"""Parity and edge-case tests for lock-step mitigated closed-loop runs.

The acceptance property mirrors the plain vector suite: a mitigated
campaign with any ``batch_size`` must be element-wise bit-identical to the
scalar :class:`~repro.simulation.loop.ClosedLoop` — for both mitigator
families, on both patient platforms, across every fault kind — including
the feedback the correction injects into later cycles (IOB, glucose, the
controller's own state).
"""

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor
from repro.controllers import ControlAction
from repro.core import (FixedMitigator, Mitigator, MonitorVerdict, NO_ALERT,
                        PredictiveMitigator, ProportionalMitigator,
                        SafetyMonitor, cawot_monitor)
from repro.fi import (CampaignConfig, FaultInjector, FaultKind, FaultSpec,
                      FaultTarget, generate_campaign)
from repro.hazards import HazardType
from repro.simulation import Scenario, make_loop, run_batch, run_campaign
from repro.simulation.executor import SimRun
from repro.simulation.features import ContextBatch


# the two benchmarked strategy families: Algorithm 1 (fixed H2 dose) and
# the KnowSafe-style rule+prediction strategy
FAMILIES = [FixedMitigator, PredictiveMitigator]


def small_campaign(n=6):
    scenarios = generate_campaign(CampaignConfig(
        stride=1, init_glucose_values=(90.0, 160.0),
        timing_choices=((0, 6), (8, 10))))
    return scenarios[:n]


def scalar_reference(platform, runs, n_steps, monitor_factory, mitigator):
    """The scalar chunk-runner semantics: one loop per patient, monitor
    from the factory, the shared mitigator reset per run."""
    traces = []
    loops = {}
    for run in runs:
        if run.patient_id not in loops:
            loops[run.patient_id] = make_loop(
                platform, run.patient_id,
                monitor=monitor_factory(run.patient_id), mitigator=mitigator)
        loop = loops[run.patient_id]
        loop.injector = FaultInjector(run.fault) if run.fault else None
        traces.append(loop.run(Scenario(init_glucose=run.init_glucose,
                                        n_steps=n_steps, label=run.label)))
    return traces


class CountingMitigator(Mitigator):
    """Stateful custom strategy without a columnar override: suspends
    insulin on the first ``budget`` alerts of a run, then gives up.
    Exercises the column-loop fallback *and* per-row reset isolation —
    if rows shared state, the budget would drain across the batch."""

    def __init__(self, budget=3):
        self.budget = budget
        self.used = 0

    def reset(self):
        self.used = 0

    def correct(self, verdict, ctx):
        if self.used >= self.budget:
            return ctx.rate, ctx.bolus
        self.used += 1
        return 0.0, 0.0


class RisingStreakMonitor(SafetyMonitor):
    """Stateful custom monitor (no vectorized observe_batch, stateless
    stays False): alerts after three consecutive rising-BG cycles."""

    name = "rising-streak"

    def __init__(self):
        self._streak = 0

    def reset(self):
        self._streak = 0

    def observe(self, ctx):
        self._streak = self._streak + 1 if ctx.bg_rate > 0.0 else 0
        if self._streak >= 3:
            return MonitorVerdict(alert=True, hazard=HazardType.H1,
                                  triggered=("rising",))
        return NO_ALERT


class TestMitigatedCampaignParity:
    @pytest.mark.parametrize("platform,patients", [
        ("glucosym", ["A", "B"]),
        ("t1ds2013", ["P01", "P02"]),
    ])
    @pytest.mark.parametrize("family", FAMILIES)
    def test_both_platforms_both_families(self, platform, patients, family,
                                          assert_traces_equal):
        scenarios = small_campaign(6)
        kwargs = dict(monitor_factory=lambda pid: cawot_monitor(),
                      mitigator=family(), n_steps=30)
        serial = run_campaign(platform, patients, scenarios, **kwargs)
        vector = run_campaign(platform, patients, scenarios, batch_size=8,
                              **kwargs)
        assert len(serial) == len(vector) == 12
        assert any(t.mitigated.any() for t in serial)
        for s, v in zip(serial, vector):
            assert_traces_equal(s, v)

    @pytest.mark.parametrize("platform,pid,init", [
        ("glucosym", "A", 170.0),
        ("t1ds2013", "P01", 190.0),
    ])
    @pytest.mark.parametrize("family", FAMILIES)
    def test_all_fault_kinds_all_targets(self, platform, pid, init, family,
                                         assert_traces_equal):
        """Every manipulation type on every target, mitigated, stays
        exact — the mitigation acceptance grid."""
        runs = []
        for kind in FaultKind:
            for target in FaultTarget:
                value = {FaultKind.ADD: 60.0, FaultKind.SUB: 40.0,
                         FaultKind.SCALE: 0.5}.get(kind, 0.0)
                fault = FaultSpec(kind=kind, target=target, start_step=3,
                                  duration_steps=12, value=value)
                runs.append(SimRun(patient_id=pid, init_glucose=init,
                                   label=fault.label, fault=fault))
        factory = lambda _pid: cawot_monitor()
        mitigator = family()
        reference = scalar_reference(platform, runs, 30, factory, mitigator)
        vector = run_batch(platform, runs, n_steps=30,
                           monitor_factory=factory, mitigator=mitigator)
        assert len(vector) == len(FaultKind) * len(FaultTarget)
        assert any(t.mitigated.any() for t in reference)
        for s, v in zip(reference, vector):
            assert_traces_equal(s, v)

    def test_proportional_family_and_ragged_batches(self,
                                                    assert_traces_equal):
        scenarios = small_campaign(7)
        kwargs = dict(monitor_factory=lambda pid: cawot_monitor(),
                      mitigator=ProportionalMitigator(), n_steps=30)
        reference = run_campaign("glucosym", ["A"], scenarios, **kwargs)
        for batch_size in (2, 3, 7, 50):
            vector = run_campaign("glucosym", ["A"], scenarios,
                                  batch_size=batch_size, **kwargs)
            for s, v in zip(reference, vector):
                assert_traces_equal(s, v)

    def test_batch_times_workers(self, assert_traces_equal):
        """workers and batch_size compose on mitigated campaigns too."""
        scenarios = small_campaign(6)
        kwargs = dict(monitor_factory=lambda pid: cawot_monitor(),
                      mitigator=FixedMitigator(), n_steps=25)
        reference = run_campaign("glucosym", ["A", "B"], scenarios, **kwargs)
        combo = run_campaign("glucosym", ["A", "B"], scenarios, workers=2,
                             batch_size=3, **kwargs)
        assert len(combo) == len(reference)
        for s, v in zip(reference, combo):
            assert_traces_equal(s, v)

    def test_stateful_monitor_rows_clone_exactly(self, assert_traces_equal):
        """Stateful monitors (no vectorized tick path) drive per-row
        clones; excursion timers must not leak across rows."""
        scenarios = small_campaign(5)
        kwargs = dict(monitor_factory=lambda pid: GuidelineMonitor(),
                      mitigator=FixedMitigator(), n_steps=35)
        serial = run_campaign("glucosym", ["A", "B"], scenarios, **kwargs)
        vector = run_campaign("glucosym", ["A", "B"], scenarios,
                              batch_size=4, **kwargs)
        assert any(t.mitigated.any() for t in serial)
        for s, v in zip(serial, vector):
            assert_traces_equal(s, v)

    def test_monitor_without_mitigator(self, assert_traces_equal):
        """Alert channels are recorded and the command passes through."""
        scenarios = small_campaign(4)
        kwargs = dict(monitor_factory=lambda pid: cawot_monitor(), n_steps=30)
        serial = run_campaign("glucosym", ["A"], scenarios, **kwargs)
        vector = run_campaign("glucosym", ["A"], scenarios, batch_size=4,
                              **kwargs)
        assert any(t.alert.any() for t in serial)
        assert not any(t.mitigated.any() for t in serial)
        for s, v in zip(serial, vector):
            assert_traces_equal(s, v)
            assert np.array_equal(v.final_rate, v.cmd_rate)

    def test_mitigator_without_monitor_never_fires(self, assert_traces_equal):
        """The scalar loop's NO_ALERT semantics: no monitor, no correction."""
        scenarios = small_campaign(3)
        plain = run_campaign("glucosym", ["A"], scenarios, n_steps=25,
                             batch_size=4)
        with_mit = run_campaign("glucosym", ["A"], scenarios, n_steps=25,
                                batch_size=4, mitigator=FixedMitigator())
        for s, v in zip(plain, with_mit):
            assert_traces_equal(s, v)


class TestMitigatorEdgeCases:
    def test_custom_mitigator_column_loop_fallback(self, assert_traces_equal):
        """A strategy without correct_mask runs per-row scalar clones —
        bit-identical to the scalar loop (mirrors the custom-monitor
        fallback test of the replay suite)."""
        scenarios = small_campaign(6)
        factory = lambda pid: cawot_monitor()
        serial = run_campaign("glucosym", ["A", "B"], scenarios, n_steps=30,
                              monitor_factory=factory,
                              mitigator=CountingMitigator(budget=3))
        vector = run_campaign("glucosym", ["A", "B"], scenarios, n_steps=30,
                              monitor_factory=factory,
                              mitigator=CountingMitigator(budget=3),
                              batch_size=8)
        assert any(t.mitigated.any() for t in serial)
        for s, v in zip(serial, vector):
            assert_traces_equal(s, v)

    def test_stateful_reset_isolation_across_batched_scenarios(self):
        """Identical scenarios batched together must mitigate identically:
        the budget is per run (per row), never shared across the batch."""
        runs = [SimRun(patient_id="A", init_glucose=170.0, label=f"r{i}")
                for i in range(5)]
        traces = run_batch("glucosym", runs, n_steps=30,
                           monitor_factory=lambda pid: cawot_monitor(),
                           mitigator=CountingMitigator(budget=2))
        counts = [int(t.mitigated.sum()) for t in traces]
        assert counts == [counts[0]] * 5  # no cross-row leakage
        assert 0 < counts[0] <= 2  # the budget held per row

    def test_custom_stateful_monitor_with_mitigation(self,
                                                     assert_traces_equal):
        """Custom monitor (column clones) + built-in mitigator (columnar
        correct_mask) compose exactly."""
        scenarios = small_campaign(4)
        kwargs = dict(monitor_factory=lambda pid: RisingStreakMonitor(),
                      mitigator=FixedMitigator(), n_steps=35)
        serial = run_campaign("glucosym", ["A"], scenarios, **kwargs)
        vector = run_campaign("glucosym", ["A"], scenarios, batch_size=4,
                              **kwargs)
        assert any(t.mitigated.any() for t in serial)
        for s, v in zip(serial, vector):
            assert_traces_equal(s, v)

    def test_proportional_bounds(self):
        """0 <= rate <= max_rate always; H1 and non-alert rows exact."""
        mit = ProportionalMitigator(isf=40.0, bg_target=120.0, max_rate=3.0,
                                    horizon_h=1.5)
        n = 6
        bg = np.array([60.0, 120.0, 200.0, 400.0, 180.0, 90.0])
        iob = np.array([0.0, 0.0, 5.0, 0.0, 1.0, 0.2])
        rate = np.full(n, 1.2)
        bolus = np.zeros(n)
        alerts = np.array([True, True, True, True, True, False])
        hazards = np.array([1, 2, 2, 2, 2, 0])
        tick = ContextBatch.from_tick(
            0.0, bg, np.zeros(n), iob, np.zeros(n), rate, bolus,
            np.full(n, int(ControlAction.KEEP)), 5.0)
        out_rate, out_bolus = mit.correct_mask(alerts, hazards, tick)
        assert np.all(out_rate >= 0.0) and np.all(out_rate <= 3.0)
        assert out_rate[0] == 0.0          # H1 suspends
        assert out_rate[1] == 0.0          # at target: nothing needed
        assert out_rate[2] == 0.0          # IOB already covers the excess
        assert out_rate[3] == 3.0          # clipped at max_rate
        assert out_rate[5] == rate[5]      # non-alert passes through
        assert np.all(out_bolus[alerts] == 0.0)
        assert out_bolus[5] == bolus[5]
        # the columnar path is the scalar correct, row for row
        for b in range(n):
            ctx = list(tick.iter_column(b))[0]
            verdict = (MonitorVerdict(alert=True,
                                      hazard=HazardType(int(hazards[b])))
                       if alerts[b] else NO_ALERT)
            s_rate, s_bolus = mit.correct(verdict, ctx)
            assert s_rate == out_rate[b] and s_bolus == out_bolus[b]

    def test_predictive_suspend_rule(self):
        """The knowledge rule vetoes insulin on a predicted drop, even
        for H2 alerts; otherwise the forecast sizes the dose."""
        mit = PredictiveMitigator(isf=50.0, bg_target=120.0,
                                  horizon_min=30.0, max_rate=5.0,
                                  suspend_bg=90.0)
        n = 4
        bg = np.array([200.0, 200.0, 300.0, 150.0])
        bg_rate = np.array([-4.0, 0.5, 0.0, 0.0])  # row 0 forecasts 80 < 90
        tick = ContextBatch.from_tick(
            0.0, bg, bg_rate, np.zeros(n), np.zeros(n), np.full(n, 1.0),
            np.zeros(n), np.full(n, int(ControlAction.KEEP)), 5.0)
        alerts = np.array([True, True, True, False])
        hazards = np.array([2, 2, 2, 0])
        rate, bolus = mit.correct_mask(alerts, hazards, tick)
        assert rate[0] == 0.0              # suspend rule fired on H2
        assert 0.0 < rate[1] <= 5.0
        assert rate[2] == 5.0              # large excess clips at max_rate
        assert rate[3] == 1.0              # non-alert passes through
        for b in range(n):
            ctx = list(tick.iter_column(b))[0]
            verdict = (MonitorVerdict(alert=True,
                                      hazard=HazardType(int(hazards[b])))
                       if alerts[b] else NO_ALERT)
            assert mit.correct(verdict, ctx) == (rate[b], bolus[b])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PredictiveMitigator(horizon_min=0.0)
        with pytest.raises(ValueError):
            PredictiveMitigator(isf=-1.0)
        with pytest.raises(ValueError):
            ProportionalMitigator(horizon_h=0.0)

    def test_broken_correct_mask_override_fails_loudly(self):
        class Broken(FixedMitigator):
            def correct_mask(self, alerts, hazards, tick):
                return None  # violates the columnar contract

        runs = [SimRun(patient_id="A", init_glucose=170.0, label="x")]
        with pytest.raises(ValueError, match="correct_mask"):
            run_batch("glucosym", runs, n_steps=30,
                      monitor_factory=lambda pid: cawot_monitor(),
                      mitigator=Broken())

    def test_base_correct_mask_returns_none(self):
        assert CountingMitigator().correct_mask(
            np.array([True]), np.array([1]), None) is None
