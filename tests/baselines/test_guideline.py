"""Tests for the medical-guidelines (Table III) baseline monitor."""

import pytest

from repro.baselines import GuidelineMonitor
from repro.controllers import ControlAction
from repro.core import ContextVector
from repro.hazards import HazardType


def ctx(bg=120.0, bg_rate=0.0, t=0.0):
    return ContextVector(t=t, bg=bg, bg_rate=bg_rate, iob=1.0, iob_rate=0.0,
                         rate=1.0, bolus=0.0, action=ControlAction.KEEP)


class TestPhi1:
    def test_normal_range_silent(self):
        assert not GuidelineMonitor().observe(ctx(bg=120.0)).alert

    def test_low_bg_alerts_h1(self):
        verdict = GuidelineMonitor().observe(ctx(bg=65.0))
        assert verdict.alert and verdict.hazard == HazardType.H1
        assert "phi1-low" in verdict.triggered

    def test_high_bg_alerts_h2(self):
        verdict = GuidelineMonitor().observe(ctx(bg=190.0))
        assert verdict.alert and verdict.hazard == HazardType.H2


class TestPhi2:
    def test_fast_fall_alerts(self):
        # -1.2 mg/dL/min = -6 per 5-minute cycle < -5
        verdict = GuidelineMonitor().observe(ctx(bg_rate=-1.2))
        assert verdict.alert and "phi2-fall" in verdict.triggered

    def test_fast_rise_alerts(self):
        verdict = GuidelineMonitor().observe(ctx(bg_rate=0.8))
        assert verdict.alert and "phi2-rise" in verdict.triggered

    def test_slow_change_silent(self):
        assert not GuidelineMonitor().observe(ctx(bg_rate=0.3)).alert


class TestPhi3Phi4:
    def test_sustained_low_percentile_alerts(self):
        monitor = GuidelineMonitor(lambda_10=90.0, alpha=25.0)
        for i in range(7):
            verdict = monitor.observe(ctx(bg=85.0, t=5.0 * i))
        assert "phi3" in verdict.triggered

    def test_recovery_resets_deadline(self):
        monitor = GuidelineMonitor(lambda_10=90.0, alpha=25.0)
        monitor.observe(ctx(bg=85.0, t=0.0))
        monitor.observe(ctx(bg=95.0, t=5.0))  # recovered
        verdict = monitor.observe(ctx(bg=85.0, t=10.0))
        assert "phi3" not in verdict.triggered

    def test_sustained_high_percentile_alerts(self):
        monitor = GuidelineMonitor(lambda_90=160.0, alpha=25.0)
        verdict = None
        for i in range(7):
            verdict = monitor.observe(ctx(bg=170.0, t=5.0 * i))
        assert "phi4" in verdict.triggered

    def test_reset_clears_deadlines(self):
        monitor = GuidelineMonitor(lambda_10=90.0, alpha=25.0)
        for i in range(4):
            monitor.observe(ctx(bg=85.0, t=5.0 * i))
        monitor.reset()
        verdict = monitor.observe(ctx(bg=85.0, t=0.0))
        assert "phi3" not in verdict.triggered


class TestFit:
    def test_fit_sets_percentiles(self):
        from repro.simulation import make_loop, Scenario
        traces = [make_loop("glucosym", "B").run(Scenario(init_glucose=120.0,
                                                          n_steps=50))]
        monitor = GuidelineMonitor().fit(traces)
        assert 100.0 < monitor.lambda_10 <= monitor.lambda_90 < 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GuidelineMonitor(bg_low=200, bg_high=100)
        with pytest.raises(ValueError):
            GuidelineMonitor(delta_low=3, delta_high=-5)
        with pytest.raises(ValueError):
            GuidelineMonitor(alpha=0)
