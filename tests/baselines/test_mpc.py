"""Tests for the MPC (Bergman & Sherwin) baseline monitor."""

import pytest

from repro.baselines import MPCMonitor
from repro.controllers import ControlAction
from repro.core import ContextVector
from repro.hazards import HazardType


def ctx(bg=120.0, rate=1.5, bolus=0.0):
    return ContextVector(t=0.0, bg=bg, bg_rate=0.0, iob=0.0, iob_rate=0.0,
                         rate=rate, bolus=bolus, action=ControlAction.KEEP)


class TestPrediction:
    def test_silent_at_steady_state(self):
        monitor = MPCMonitor()
        verdict = monitor.observe(ctx(bg=120.0))
        assert not verdict.alert

    def test_massive_overdose_predicts_h1(self):
        monitor = MPCMonitor(horizon_steps=24)
        monitor.observe(ctx(bg=110.0))
        verdict = None
        for _ in range(12):
            verdict = monitor.observe(ctx(bg=110.0, rate=10.0, bolus=5.0))
        assert verdict.alert
        assert verdict.hazard == HazardType.H1

    def test_high_bg_with_no_insulin_predicts_h2(self):
        monitor = MPCMonitor(horizon_steps=24)
        verdict = monitor.observe(ctx(bg=175.0, rate=0.0))
        assert verdict.alert
        assert verdict.hazard == HazardType.H2

    def test_reset_clears_state(self):
        monitor = MPCMonitor()
        for _ in range(5):
            monitor.observe(ctx(bg=120.0, rate=10.0))
        monitor.reset()
        assert monitor._ieff is None

    def test_population_model_not_patient_specific(self):
        """Same verdicts regardless of which patient produced the context."""
        m1, m2 = MPCMonitor(), MPCMonitor()
        v1 = m1.observe(ctx(bg=150.0))
        v2 = m2.observe(ctx(bg=150.0))
        assert v1.alert == v2.alert

    def test_validation(self):
        with pytest.raises(ValueError):
            MPCMonitor(horizon_steps=0)
        with pytest.raises(ValueError):
            MPCMonitor(bg_low=200, bg_high=100)


class TestClosedLoop:
    def test_detects_rate_attack_in_simulation(self):
        from repro.fi import FaultInjector, FaultKind, FaultSpec, FaultTarget
        from repro.simulation import make_loop, Scenario
        loop = make_loop("glucosym", "B", monitor=MPCMonitor(horizon_steps=24))
        loop.injector = FaultInjector(
            FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 24))
        trace = loop.run(Scenario(init_glucose=120.0))
        assert trace.alert.any()

    def test_mostly_silent_fault_free(self):
        from repro.simulation import make_loop, Scenario
        loop = make_loop("glucosym", "B", monitor=MPCMonitor(horizon_steps=24))
        trace = loop.run(Scenario(init_glucose=120.0))
        assert trace.alert.mean() < 0.2
