"""End-to-end integration tests: the full pipeline on both platforms.

These exercise the complete story of the paper once per platform: inject a
fault, watch the hazard develop, learn thresholds, detect with CAWT, and
mitigate with Algorithm 1.
"""

import pytest

from repro.core import FixedMitigator, cawt_monitor, learn_thresholds
from repro.fi import CampaignConfig, FaultInjector, FaultKind, FaultSpec, \
    FaultTarget, generate_campaign
from repro.hazards import HazardType
from repro.metrics import traces_confusion
from repro.simulation import Scenario, make_loop, replay_many, run_campaign, \
    run_fault_free


@pytest.fixture(scope="module", params=["glucosym", "t1ds2013"])
def platform_setup(request):
    platform = request.param
    pid = {"glucosym": "B", "t1ds2013": "P01"}[platform]
    config = CampaignConfig(init_glucose_values=(120.0, 200.0),
                            timing_choices=((0, 24), (40, 30), (85, 24)))
    traces = run_campaign(platform, [pid], generate_campaign(config))
    fault_free = run_fault_free(platform, [pid], (80.0, 120.0, 200.0))
    return platform, pid, traces, fault_free


class TestPipeline:
    def test_campaign_produces_both_outcomes(self, platform_setup):
        _, _, traces, _ = platform_setup
        hazards = sum(t.hazardous for t in traces)
        assert 0 < hazards < len(traces)

    def test_fault_free_runs_are_safe(self, platform_setup):
        _, _, _, fault_free = platform_setup
        assert not any(t.hazardous for t in fault_free)

    def test_learning_and_detection(self, platform_setup):
        _, _, traces, fault_free = platform_setup
        thresholds = learn_thresholds(traces + fault_free).thresholds
        monitor = cawt_monitor(thresholds)
        alerts = replay_many(monitor, traces)
        cm = traces_confusion(traces, alerts)
        # in-sample: high fidelity expected
        assert cm.fnr < 0.3
        assert cm.fpr < 0.1
        assert cm.f1 > 0.5

    def test_overdose_attack_story(self, platform_setup):
        """max_rate attack -> H1 hazard -> CAWT alert -> mitigation helps."""
        platform, pid, traces, fault_free = platform_setup
        thresholds = learn_thresholds(traces + fault_free).thresholds
        spec = FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 30)

        plain_loop = make_loop(platform, pid)
        plain_loop.injector = FaultInjector(spec)
        plain = plain_loop.run(Scenario(init_glucose=120.0))
        assert plain.hazardous
        assert plain.hazard_label.first_type == HazardType.H1

        guarded_loop = make_loop(platform, pid,
                                 monitor=cawt_monitor(thresholds),
                                 mitigator=FixedMitigator())
        guarded_loop.injector = FaultInjector(spec)
        guarded = guarded_loop.run(Scenario(init_glucose=120.0))
        assert guarded.alert.any()
        assert guarded.mitigated.any()
        # mitigation must raise the BG floor substantially
        assert guarded.true_bg.min() > plain.true_bg.min() + 10

    def test_stl_offline_check_agrees_with_monitor(self, platform_setup):
        """The Table I STL formulas evaluated offline flag the same traces."""
        from repro.core import aps_rules
        from repro.stl import satisfied
        _, _, traces, fault_free = platform_setup
        thresholds = learn_thresholds(traces + fault_free).thresholds
        monitor = cawt_monitor(thresholds)
        rules = aps_rules()
        checked = 0
        for trace in traces[:40]:
            alerts = replay_many(monitor, [trace])[0]
            stl_trace = trace.to_stl_trace()
            stl_violated = any(
                not satisfied(rule.formula(), stl_trace, env=thresholds)
                for rule in rules)
            assert stl_violated == bool(alerts.any())
            checked += 1
        assert checked == 40
