"""Unit tests for the STL text parser."""

import pytest

from repro.stl import (
    And,
    Eventually,
    Globally,
    Implies,
    Not,
    Or,
    Param,
    ParseError,
    Predicate,
    Signal,
    Since,
    Until,
    parse,
)


class TestAtoms:
    def test_comparison(self):
        f = parse("BG > 180")
        assert isinstance(f, Predicate)
        assert (f.channel, f.op, f.threshold) == ("BG", ">", 180.0)

    def test_all_comparison_ops(self):
        for op in ("<", "<=", ">", ">=", "==", "!="):
            f = parse(f"BG {op} 100")
            assert f.op == op

    def test_negative_threshold(self):
        f = parse("BG' > -5")
        assert f.threshold == -5.0

    def test_scientific_notation(self):
        f = parse("x > 1.5e-3")
        assert f.threshold == pytest.approx(1.5e-3)

    def test_primed_identifier(self):
        f = parse("BG' < 3")
        assert f.channel == "BG'"

    def test_bare_identifier_is_boolean_signal(self):
        f = parse("u1")
        assert isinstance(f, Signal)

    def test_param_rhs(self):
        f = parse("IOB < beta1")
        assert isinstance(f.threshold, Param)
        assert f.threshold.name == "beta1"

    def test_param_default_injection(self):
        f = parse("IOB < beta1", params={"beta1": 2.5})
        assert f.threshold.default == 2.5

    def test_true_false(self):
        from repro.stl import Atomic
        assert isinstance(parse("true"), Atomic)
        assert parse("false").value is False


class TestOperators:
    def test_not(self):
        f = parse("!u1")
        assert isinstance(f, Not)
        assert isinstance(f.child, Signal)

    def test_and_is_nary(self):
        f = parse("a & b & c")
        assert isinstance(f, And)
        assert len(f.children) == 3

    def test_or(self):
        f = parse("a | b")
        assert isinstance(f, Or)

    def test_and_binds_tighter_than_or(self):
        f = parse("a & b | c")
        assert isinstance(f, Or)
        assert isinstance(f.children[0], And)

    def test_implies_right_assoc(self):
        f = parse("a -> b -> c")
        assert isinstance(f, Implies)
        assert isinstance(f.consequent, Implies)

    def test_c_style_synonyms(self):
        f = parse("a && b || c")
        assert isinstance(f, Or)

    def test_parentheses(self):
        f = parse("(a | b) & c")
        assert isinstance(f, And)


class TestTemporal:
    def test_globally_with_window(self):
        f = parse("G[0,720](BG > 70)")
        assert isinstance(f, Globally)
        assert (f.lo, f.hi) == (0.0, 720.0)

    def test_globally_unbounded(self):
        f = parse("G(BG > 70)")
        assert f.hi is None

    def test_globally_end_keyword(self):
        f = parse("G[5,end](BG > 70)")
        assert f.lo == 5.0 and f.hi is None

    def test_eventually(self):
        f = parse("F[0,25](BG > 70)")
        assert isinstance(f, Eventually)

    def test_until(self):
        f = parse("a U[0,30] b")
        assert isinstance(f, Until)
        assert f.hi == 30.0

    def test_since(self):
        f = parse("(F[0,15](u3)) S (BG < 70)")
        assert isinstance(f, Since)
        assert isinstance(f.left, Eventually)

    def test_paper_rule_shape(self):
        f = parse("G[0,745]((BG > 120 & BG' > 0) & (IOB' < 0 & IOB < beta1) -> !u1)")
        assert isinstance(f, Globally)
        assert isinstance(f.child, Implies)
        assert f.parameters() == frozenset({"beta1"})


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("a b")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("(a & b")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse("a @ b")

    def test_bad_window(self):
        with pytest.raises(ParseError):
            parse("G[a,b](x > 1)")

    def test_comparison_to_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse("BG > end")

    def test_str_of_parsed_formula_reparses(self):
        text = "G[0,720]((BG > 180 & IOB < beta1) -> !u1)"
        f = parse(text)
        f2 = parse(str(f))
        assert str(f2) == str(f)
