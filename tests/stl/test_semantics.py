"""Unit tests for STL boolean and robustness semantics."""

import numpy as np
import pytest

from repro.stl import (
    Atomic,
    Globally,
    Not,
    Signal,
    parse,
    robustness,
    satisfaction,
    satisfied,
    trace_robustness,
    Trace,
)


def tr(**channels):
    return Trace(channels, dt=5.0)


class TestPredicates:
    def test_gt_boolean(self):
        t = tr(BG=[60.0, 70.0, 80.0])
        np.testing.assert_array_equal(
            satisfaction(parse("BG > 70"), t), [False, False, True])

    def test_ge_includes_boundary(self):
        t = tr(BG=[60.0, 70.0, 80.0])
        np.testing.assert_array_equal(
            satisfaction(parse("BG >= 70"), t), [False, True, True])

    def test_lt_robustness_sign(self):
        t = tr(IOB=[1.0, 3.0])
        rob = robustness(parse("IOB < 2"), t)
        np.testing.assert_allclose(rob, [1.0, -1.0])

    def test_gt_robustness_is_margin(self):
        t = tr(BG=[100.0, 200.0])
        rob = robustness(parse("BG > 180"), t)
        np.testing.assert_allclose(rob, [-80.0, 20.0])

    def test_equality_on_discrete_channel(self):
        t = tr(mode=[0.0, 1.0, 2.0])
        np.testing.assert_array_equal(
            satisfaction(parse("mode == 1"), t), [False, True, False])

    def test_inequality(self):
        t = tr(mode=[0.0, 1.0])
        np.testing.assert_array_equal(
            satisfaction(parse("mode != 1"), t), [True, False])

    def test_param_env_resolution(self):
        t = tr(IOB=[1.0, 3.0])
        f = parse("IOB < beta1")
        np.testing.assert_array_equal(
            satisfaction(f, t, env={"beta1": 2.0}), [True, False])

    def test_boolean_signal(self):
        t = tr(u1=[0.0, 1.0, 0.0])
        np.testing.assert_array_equal(satisfaction(Signal("u1"), t),
                                      [False, True, False])


class TestBooleanConnectives:
    def test_not(self):
        t = tr(u1=[0.0, 1.0])
        np.testing.assert_array_equal(satisfaction(Not(Signal("u1")), t),
                                      [True, False])

    def test_robustness_negation_flips_sign(self):
        t = tr(BG=[100.0])
        f = parse("BG > 80")
        assert trace_robustness(Not(f), t) == -trace_robustness(f, t)

    def test_and_robustness_is_min(self):
        t = tr(a=[5.0], b=[2.0])
        f = parse("a > 0 & b > 0")
        assert trace_robustness(f, t) == 2.0

    def test_or_robustness_is_max(self):
        t = tr(a=[5.0], b=[2.0])
        f = parse("a > 0 | b > 0")
        assert trace_robustness(f, t) == 5.0

    def test_implies_false_antecedent(self):
        t = tr(BG=[100.0], u1=[1.0])
        assert satisfied(parse("BG > 180 -> !u1"), t)

    def test_implies_true_antecedent_false_consequent(self):
        t = tr(BG=[200.0], u1=[1.0])
        assert not satisfied(parse("BG > 180 -> !u1"), t)

    def test_atomic_constants(self):
        t = tr(a=[0.0, 0.0])
        assert satisfaction(Atomic(True), t).all()
        assert not satisfaction(Atomic(False), t).any()


class TestGlobally:
    def test_globally_all_samples(self):
        t = tr(BG=[80.0, 90.0, 100.0])
        assert satisfied(parse("G(BG > 70)"), t)

    def test_globally_detects_violation(self):
        t = tr(BG=[80.0, 60.0, 100.0])
        assert not satisfied(parse("G(BG > 70)"), t)

    def test_window_in_minutes(self):
        # violation at sample 3 (t=15min) is outside G[0,10]
        t = tr(BG=[80.0, 90.0, 85.0, 60.0])
        assert satisfied(parse("G[0,10](BG > 70)"), t)
        assert not satisfied(parse("G[0,15](BG > 70)"), t)

    def test_pointwise_output(self):
        t = tr(BG=[60.0, 90.0, 95.0])
        out = satisfaction(parse("G(BG > 70)"), t)
        np.testing.assert_array_equal(out, [False, True, True])

    def test_globally_robustness_is_min(self):
        t = tr(BG=[90.0, 75.0, 120.0])
        assert trace_robustness(parse("G(BG > 70)"), t) == pytest.approx(5.0)

    def test_empty_future_window_vacuously_true(self):
        # at the last sample, G[5,10] looks beyond the trace: vacuous
        t = tr(BG=[60.0])
        assert satisfied(parse("G[5,10](BG > 70)"), t)

    def test_window_not_multiple_of_dt_rejected(self):
        t = tr(BG=[80.0, 90.0])
        with pytest.raises(ValueError, match="multiple"):
            satisfied(parse("G[0,7](BG > 70)"), t)


class TestEventually:
    def test_eventually_true(self):
        t = tr(BG=[60.0, 60.0, 75.0])
        assert satisfied(parse("F(BG > 70)"), t)

    def test_eventually_false(self):
        t = tr(BG=[60.0, 60.0, 65.0])
        assert not satisfied(parse("F(BG > 70)"), t)

    def test_eventually_window(self):
        t = tr(BG=[60.0, 60.0, 75.0])
        assert not satisfied(parse("F[0,5](BG > 70)"), t)
        assert satisfied(parse("F[0,10](BG > 70)"), t)

    def test_empty_window_false(self):
        t = tr(BG=[75.0])
        assert not satisfied(parse("F[5,10](BG > 70)"), t)

    def test_eventually_robustness_is_max(self):
        t = tr(BG=[60.0, 100.0, 80.0])
        assert trace_robustness(parse("F(BG > 70)"), t) == pytest.approx(30.0)

    def test_duality_with_globally(self):
        t = tr(BG=[60.0, 100.0, 80.0])
        f_ev = parse("F(BG > 70)")
        f_gl = Not(Globally(Not(parse("BG > 70"))))
        np.testing.assert_array_equal(satisfaction(f_ev, t), satisfaction(f_gl, t))


class TestUntil:
    def test_until_basic(self):
        # a holds until b becomes true at sample 2
        t = tr(a=[1.0, 1.0, 0.0], b=[0.0, 0.0, 1.0])
        assert satisfied(parse("a U b"), t)

    def test_until_fails_when_left_breaks(self):
        t = tr(a=[1.0, 0.0, 0.0], b=[0.0, 0.0, 1.0])
        assert not satisfied(parse("a U b"), t)

    def test_until_immediate_right(self):
        t = tr(a=[0.0], b=[1.0])
        assert satisfied(parse("a U b"), t)

    def test_until_window(self):
        t = tr(a=[1.0, 1.0, 1.0, 0.0], b=[0.0, 0.0, 1.0, 0.0])
        assert not satisfied(parse("a U[0,5] b"), t)
        assert satisfied(parse("a U[0,10] b"), t)

    def test_until_robustness_positive_iff_satisfied(self):
        t = tr(a=[1.0, 1.0, 0.0], b=[0.0, 0.0, 1.0])
        f = parse("a U b")
        assert (trace_robustness(f, t) > 0) == satisfied(f, t)


class TestSince:
    def test_since_basic(self):
        # b was true at sample 0, a held afterwards
        t = tr(a=[0.0, 1.0, 1.0], b=[1.0, 0.0, 0.0])
        out = satisfaction(parse("a S b"), t)
        np.testing.assert_array_equal(out, [True, True, True])

    def test_since_fails_when_left_breaks(self):
        t = tr(a=[0.0, 0.0, 1.0], b=[1.0, 0.0, 0.0])
        out = satisfaction(parse("a S b"), t)
        np.testing.assert_array_equal(out, [True, False, False])

    def test_since_window_limits_past(self):
        t = tr(a=[0.0, 1.0, 1.0, 1.0], b=[1.0, 0.0, 0.0, 0.0])
        out = satisfaction(parse("a S[0,5] b"), t)
        # at sample 3, b last held 15 min ago: outside [0,5]
        np.testing.assert_array_equal(out, [True, True, False, False])

    def test_hms_shape_from_paper(self):
        # Eq. 2: G( (F[0,ts](uc)) S (context) ) - mitigation uc issued within
        # ts minutes since entering context.
        t = tr(uc=[0.0, 0.0, 1.0, 0.0], low=[0.0, 1.0, 1.0, 1.0])
        f = parse("(F[0,5](uc)) S low")
        out = satisfaction(f, t)
        # context entered at sample 1; uc at sample 2 is within 5 min of
        # samples 1 and 2 and within the window from sample 3's perspective
        assert bool(out[1]) and bool(out[2])


class TestPaperRules:
    def test_rule1_alerts_on_uca(self):
        """Table I rule 1: hyper context & decrease-insulin action violates."""
        rule = parse("G((BG > 120 & BG' > 0 & IOB' < 0 & IOB < beta1) -> !u1)")
        t = Trace({
            "BG": [150.0, 160.0, 170.0],
            "BG'": [0.0, 2.0, 2.0],
            "IOB": [1.0, 0.8, 0.6],
            "IOB'": [0.0, -0.04, -0.04],
            "u1": [0.0, 1.0, 0.0],
        }, dt=5.0)
        assert not satisfied(rule, t, env={"beta1": 2.0})
        # with a tiny threshold the context never holds -> satisfied
        assert satisfied(rule, t, env={"beta1": 0.1})

    def test_rule10_requires_stop_on_low_bg(self):
        rule = parse("G((BG < beta21) -> u3)")
        t = Trace({"BG": [80.0, 60.0], "u3": [0.0, 1.0]}, dt=5.0)
        assert satisfied(rule, t, env={"beta21": 70.0})
        t_bad = Trace({"BG": [80.0, 60.0], "u3": [0.0, 0.0]}, dt=5.0)
        assert not satisfied(rule, t_bad, env={"beta21": 70.0})
