"""Hypothesis property-based tests for the STL engine.

These check the classic soundness/duality laws of quantitative STL semantics
on randomly generated traces and formulas.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stl import (
    And,
    Eventually,
    Globally,
    Not,
    Or,
    Predicate,
    robustness,
    satisfaction,
    Trace,
)

N_SAMPLES = 12


@st.composite
def traces(draw):
    values = draw(st.lists(
        st.floats(min_value=-100, max_value=400, allow_nan=False,
                  allow_infinity=False, width=32),
        min_size=N_SAMPLES, max_size=N_SAMPLES))
    return Trace({"x": values}, dt=5.0)


@st.composite
def predicates(draw):
    op = draw(st.sampled_from(["<", "<=", ">", ">="]))
    threshold = draw(st.floats(min_value=-50, max_value=350, allow_nan=False,
                               allow_infinity=False, width=32))
    return Predicate("x", op, threshold)


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(predicates())
    kind = draw(st.sampled_from(["pred", "not", "and", "or", "G", "F"]))
    if kind == "pred":
        return draw(predicates())
    if kind == "not":
        return Not(draw(formulas(depth=depth - 1)))
    if kind in ("and", "or"):
        left = draw(formulas(depth=depth - 1))
        right = draw(formulas(depth=depth - 1))
        return And([left, right]) if kind == "and" else Or([left, right])
    lo = draw(st.integers(min_value=0, max_value=2)) * 5.0
    hi = lo + draw(st.integers(min_value=0, max_value=3)) * 5.0
    cls = Globally if kind == "G" else Eventually
    return cls(draw(formulas(depth=depth - 1)), lo, hi)


@given(traces(), formulas())
@settings(max_examples=150, deadline=None)
def test_soundness_positive_robustness_implies_satisfaction(trace, formula):
    """rho > 0 => satisfied; rho < 0 => not satisfied (at every index)."""
    rho = robustness(formula, trace)
    sat = satisfaction(formula, trace)
    strictly_pos = rho > 1e-9
    strictly_neg = rho < -1e-9
    assert np.all(sat[strictly_pos])
    assert not np.any(sat[strictly_neg])


@given(traces(), formulas())
@settings(max_examples=100, deadline=None)
def test_negation_flips_robustness(trace, formula):
    rho = robustness(formula, trace)
    rho_neg = robustness(Not(formula), trace)
    np.testing.assert_allclose(rho_neg, -rho)


@given(traces(), formulas())
@settings(max_examples=100, deadline=None)
def test_globally_eventually_duality(trace, formula):
    """G phi == !F !phi pointwise (boolean and robustness)."""
    g = Globally(formula, 0, 15)
    dual = Not(Eventually(Not(formula), 0, 15))
    np.testing.assert_array_equal(satisfaction(g, trace), satisfaction(dual, trace))
    np.testing.assert_allclose(robustness(g, trace), robustness(dual, trace))


@given(traces(), formulas(), formulas())
@settings(max_examples=100, deadline=None)
def test_conjunction_is_min(trace, f1, f2):
    rho = robustness(And([f1, f2]), trace)
    expected = np.minimum(robustness(f1, trace), robustness(f2, trace))
    np.testing.assert_allclose(rho, expected)


@given(traces(), predicates())
@settings(max_examples=100, deadline=None)
def test_globally_monotone_in_window(trace, pred):
    """Widening a G window can only lower robustness."""
    narrow = robustness(Globally(pred, 0, 10), trace)
    wide = robustness(Globally(pred, 0, 25), trace)
    assert np.all(wide <= narrow + 1e-9)


@given(traces(), predicates())
@settings(max_examples=100, deadline=None)
def test_eventually_monotone_in_window(trace, pred):
    """Widening an F window can only raise robustness."""
    narrow = robustness(Eventually(pred, 0, 10), trace)
    wide = robustness(Eventually(pred, 0, 25), trace)
    assert np.all(wide >= narrow - 1e-9)


@given(traces(), predicates())
@settings(max_examples=100, deadline=None)
def test_predicate_robustness_matches_margin(trace, pred):
    rho = robustness(pred, trace)
    x = trace["x"]
    if pred.op in (">", ">="):
        np.testing.assert_allclose(rho, x - pred.threshold)
    else:
        np.testing.assert_allclose(rho, pred.threshold - x)
