"""Unit tests for repro.stl.signals.Trace."""

import numpy as np
import pytest

from repro.stl import Trace


def make_trace(**channels):
    return Trace(channels, dt=5.0)


class TestConstruction:
    def test_basic_channels(self):
        tr = make_trace(BG=[100, 110, 120], IOB=[1.0, 1.5, 2.0])
        assert len(tr) == 3
        assert set(tr.names) == {"BG", "IOB"}
        np.testing.assert_allclose(tr["BG"], [100, 110, 120])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            Trace({"a": [1, 2, 3], "b": [1, 2]})

    def test_empty_channel_mapping_rejected(self):
        with pytest.raises(ValueError, match="at least one channel"):
            Trace({})

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ValueError, match="dt"):
            Trace({"a": [1.0]}, dt=0.0)

    def test_multidimensional_channel_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Trace({"a": np.zeros((2, 2))})

    def test_missing_channel_raises_keyerror_with_names(self):
        tr = make_trace(BG=[100.0])
        with pytest.raises(KeyError, match="BG"):
            tr.channel("nope")


class TestTimeAxis:
    def test_times_respect_dt_and_t0(self):
        tr = Trace({"a": [0, 0, 0]}, dt=5.0, t0=10.0)
        np.testing.assert_allclose(tr.times, [10, 15, 20])

    def test_duration(self):
        tr = Trace({"a": np.zeros(150)}, dt=5.0)
        assert tr.duration == pytest.approx(149 * 5.0)

    def test_duration_single_sample(self):
        tr = Trace({"a": [1.0]}, dt=5.0)
        assert tr.duration == 0.0

    def test_steps_converts_minutes(self):
        tr = make_trace(a=np.zeros(5))
        assert tr.steps(25.0) == 5
        assert tr.steps(0.0) == 0

    def test_steps_rejects_non_multiple(self):
        tr = make_trace(a=np.zeros(5))
        with pytest.raises(ValueError, match="multiple"):
            tr.steps(7.0)


class TestDerivedChannels:
    def test_with_channel_replaces(self):
        tr = make_trace(a=[1.0, 2.0])
        tr2 = tr.with_channel("a", [5.0, 6.0])
        np.testing.assert_allclose(tr2["a"], [5.0, 6.0])
        np.testing.assert_allclose(tr["a"], [1.0, 2.0])  # original untouched

    def test_with_derivative_backward_difference(self):
        tr = make_trace(BG=[100.0, 110.0, 105.0])
        tr2 = tr.with_derivative("BG")
        np.testing.assert_allclose(tr2["BG'"], [0.0, 2.0, -1.0])

    def test_with_derivative_custom_name(self):
        tr = make_trace(BG=[100.0, 110.0])
        tr2 = tr.with_derivative("BG", out="dBG")
        assert "dBG" in tr2

    def test_derivative_first_sample_is_zero(self):
        tr = make_trace(BG=[42.0])
        tr2 = tr.with_derivative("BG")
        assert tr2["BG'"][0] == 0.0


class TestSlice:
    def test_slice_shifts_t0(self):
        tr = Trace({"a": np.arange(10.0)}, dt=5.0)
        sub = tr.slice(2, 6)
        assert len(sub) == 4
        assert sub.t0 == pytest.approx(10.0)
        np.testing.assert_allclose(sub["a"], [2, 3, 4, 5])

    def test_slice_default_stop(self):
        tr = Trace({"a": np.arange(4.0)}, dt=5.0)
        assert len(tr.slice(1)) == 3

    def test_bad_slice_rejected(self):
        tr = Trace({"a": np.arange(4.0)}, dt=5.0)
        with pytest.raises(IndexError):
            tr.slice(3, 2)
        with pytest.raises(IndexError):
            tr.slice(0, 99)

    def test_to_dict_is_shallow_copy(self):
        tr = make_trace(a=[1.0])
        d = tr.to_dict()
        d["b"] = np.array([2.0])
        assert "b" not in tr
