"""Unit tests for the STL AST (repro.stl.ast)."""

import pytest

from repro.stl import (
    And,
    Atomic,
    Eventually,
    Globally,
    Implies,
    Not,
    Or,
    Param,
    Predicate,
    Signal,
    Since,
    Until,
    all_params,
)


class TestParam:
    def test_resolve_from_env(self):
        p = Param("beta1")
        assert p.resolve({"beta1": 3.5}) == 3.5

    def test_resolve_default(self):
        p = Param("beta1", default=2.0)
        assert p.resolve(None) == 2.0
        assert p.resolve({}) == 2.0

    def test_env_overrides_default(self):
        p = Param("beta1", default=2.0)
        assert p.resolve({"beta1": 9.0}) == 9.0

    def test_unbound_raises(self):
        with pytest.raises(KeyError, match="beta1"):
            Param("beta1").resolve(None)

    def test_equality_and_hash(self):
        assert Param("b", 1.0) == Param("b", 1.0)
        assert Param("b") != Param("c")
        assert hash(Param("b", 1.0)) == hash(Param("b", 1.0))


class TestPredicate:
    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError, match="comparison"):
            Predicate("BG", "~", 100)

    def test_parameters_exposed(self):
        pred = Predicate("IOB", "<", Param("beta1"))
        assert pred.parameters() == frozenset({"beta1"})

    def test_concrete_threshold_has_no_parameters(self):
        assert Predicate("BG", ">", 180).parameters() == frozenset()

    def test_bind_replaces_param(self):
        pred = Predicate("IOB", "<", Param("beta1"))
        bound = pred.bind({"beta1": 4.2})
        assert bound.resolve_threshold(None) == 4.2
        # original unchanged
        assert isinstance(pred.threshold, Param)

    def test_bind_ignores_other_names(self):
        pred = Predicate("IOB", "<", Param("beta1"))
        assert isinstance(pred.bind({"other": 1.0}).threshold, Param)

    def test_str(self):
        assert str(Predicate("BG", ">", 180)) == "(BG > 180)"


class TestSignal:
    def test_signal_is_boolean_predicate(self):
        sig = Signal("u1")
        assert sig.channel == "u1"
        assert sig.op == ">"
        assert sig.threshold == 0.5

    def test_str_is_bare_name(self):
        assert str(Signal("u1")) == "u1"


class TestComposite:
    def test_and_collects_parameters(self):
        f = And([Predicate("IOB", "<", Param("b1")), Predicate("BG", ">", Param("b2"))])
        assert f.parameters() == frozenset({"b1", "b2"})

    def test_nested_bind(self):
        f = Globally(Implies(Predicate("IOB", "<", Param("b1")), Not(Signal("u1"))))
        bound = f.bind({"b1": 1.5})
        assert bound.parameters() == frozenset()

    def test_empty_nary_rejected(self):
        with pytest.raises(ValueError):
            And([])
        with pytest.raises(ValueError):
            Or([])

    def test_operator_overloads(self):
        a = Predicate("BG", ">", 180)
        b = Signal("u1")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)
        assert isinstance(a.implies(b), Implies)

    def test_channels(self):
        f = Implies(Predicate("BG", ">", 180) & Predicate("IOB", "<", 2), Not(Signal("u1")))
        assert f.channels() == frozenset({"BG", "IOB", "u1"})

    def test_all_params_reports_defaults(self):
        f = And([
            Predicate("IOB", "<", Param("b1", default=2.0)),
            Predicate("IOB", ">", Param("b2")),
        ])
        assert all_params(f) == {"b1": 2.0, "b2": None}


class TestTemporal:
    def test_negative_lower_bound_rejected(self):
        with pytest.raises(ValueError):
            Globally(Atomic(True), lo=-1)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            Eventually(Atomic(True), lo=10, hi=5)

    def test_unbounded_window_allowed(self):
        g = Globally(Atomic(True), lo=0, hi=None)
        assert g.hi is None

    def test_binary_temporal_children(self):
        u = Until(Signal("a"), Signal("b"), 0, 30)
        assert u.left.channel == "a"
        assert u.right.channel == "b"

    def test_since_window_validation(self):
        with pytest.raises(ValueError):
            Since(Atomic(True), Atomic(True), lo=5, hi=1)

    def test_str_round_trippable_tokens(self):
        f = Globally(Implies(Predicate("BG", ">", 180), Not(Signal("u1"))), 0, 720)
        text = str(f)
        assert "G[0,720]" in text and "u1" in text and "->" in text
