"""Property battery for shard-range partitioning.

The coordinator's correctness rests on :func:`partition_ranges` being a
deterministic, disjoint, covering tiling of the plan — and on a retried
range re-deriving the same work from ``(start, stop)`` alone.  These are
exactly the invariants :func:`ranges_defect` checks at merge time, so the
two functions are also tested against each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import partition_ranges, ranges_defect, shard_indices

sizes = st.integers(min_value=0, max_value=500)
hosts = st.integers(min_value=1, max_value=64)


class TestPartitionRanges:
    @given(sizes, hosts)
    @settings(max_examples=200, deadline=None)
    def test_disjoint_and_covering(self, n, k):
        assert ranges_defect(partition_ranges(n, k), n) is None

    @given(sizes, hosts)
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, n, k):
        assert partition_ranges(n, k) == partition_ranges(n, k)

    @given(sizes, hosts)
    @settings(max_examples=200, deadline=None)
    def test_matches_shard_indices(self, n, k):
        """Ranges are the executor's chunk boundaries — the distributed
        partition IS the single-box partition."""
        expected = [(r.start, r.stop) for r in shard_indices(n, k) if len(r)]
        assert partition_ranges(n, k) == expected

    @given(sizes, hosts)
    @settings(max_examples=200, deadline=None)
    def test_ordered_and_nonempty(self, n, k):
        ranges = partition_ranges(n, k)
        assert all(a < b for a, b in ranges)
        assert ranges == sorted(ranges)
        assert len(ranges) == min(n, k) if n else ranges == []

    @given(sizes, hosts)
    @settings(max_examples=200, deadline=None)
    def test_balanced(self, n, k):
        lengths = [b - a for a, b in partition_ranges(n, k)]
        if lengths:
            assert max(lengths) - min(lengths) <= 1

    @given(sizes, hosts, hosts)
    @settings(max_examples=200, deadline=None)
    def test_stable_under_retry_host_count(self, n, k, k_retry):
        """The retry path re-executes a recorded ``(start, stop)`` — the
        work a range describes must not depend on how many hosts the
        *rest* of the campaign is spread over.  Re-partitioning a range
        for a different local worker count tiles exactly that range."""
        for start, stop in partition_ranges(n, k):
            sub = partition_ranges(stop - start, k_retry)
            shifted = [(start + a, start + b) for a, b in sub]
            cursor = start
            for a, b in shifted:
                assert a == cursor
                cursor = b
            assert cursor == stop


class TestRangesDefect:
    @given(sizes, hosts)
    @settings(max_examples=100, deadline=None)
    def test_missing_range_detected(self, n, k):
        ranges = partition_ranges(n, k)
        if len(ranges) < 2:
            return
        defect = ranges_defect(ranges[:-1], n)
        assert defect is not None and "missing" in defect

    @given(sizes, hosts)
    @settings(max_examples=100, deadline=None)
    def test_duplicated_range_detected(self, n, k):
        ranges = partition_ranges(n, k)
        if not ranges:
            return
        defect = ranges_defect(ranges + [ranges[0]], n)
        assert defect is not None and "overlap" in defect

    def test_ill_formed_slice(self):
        assert "well-formed" in ranges_defect([(2, 1)], 5)
        assert "well-formed" in ranges_defect([(-1, 3)], 5)
        assert "well-formed" in ranges_defect([(0, 6)], 5)

    def test_order_independent(self):
        assert ranges_defect([(4, 7), (0, 4), (7, 10)], 10) is None

    def test_trailing_gap(self):
        assert "range [7, 10) is missing" == ranges_defect(
            [(0, 4), (4, 7)], 10)
