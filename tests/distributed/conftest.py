"""Fixtures for the distributed campaign battery.

One tiny-but-real campaign plan (6 faulted patient-B runs, 40 steps) is
simulated exactly once per session into a single-box reference store;
every parity assertion in this package compares against that directory.
Keeping the plan this small keeps the whole battery — which re-executes
it many times through subprocess workers — inside tier-1 wall-clock.
"""

import os

import pytest

from repro.distributed import save_plan
from repro.fi import CampaignConfig, generate_campaign
from repro.simulation import CampaignStoreWriter, get_executor
from repro.simulation.executor import plan_campaign

FOLDS = 2


def small_plan():
    """6-run glucosym patient-B plan, 40 steps (module-level so property
    tests can rebuild it without the fixture machinery)."""
    config = CampaignConfig(init_glucose_values=(120.0,),
                            timing_choices=((0, 24),))
    return plan_campaign("glucosym", ["B"], generate_campaign(config)[:6],
                         n_steps=40)


@pytest.fixture(scope="session")
def plan():
    return small_plan()


@pytest.fixture(scope="session")
def plan_path(plan, tmp_path_factory):
    """The plan serialized to disk, as workers receive it."""
    path = tmp_path_factory.mktemp("plan") / "plan.json"
    return save_plan(plan, str(path))


@pytest.fixture(scope="session")
def reference_store(plan, tmp_path_factory):
    """Single-box reference dataset: the byte-identity target."""
    directory = str(tmp_path_factory.mktemp("reference") / "store")
    with CampaignStoreWriter(directory, plan.platform, plan.n_steps,
                             folds=FOLDS) as writer:
        get_executor(None, None).run(plan, sink=writer)
    return directory


@pytest.fixture(scope="session")
def reference_manifest_bytes(reference_store):
    with open(os.path.join(reference_store, "manifest.json"), "rb") as fh:
        return fh.read()
