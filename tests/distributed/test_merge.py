"""merge_manifests: the golden byte-identity path and every refusal row.

The clean merge is compared against the session's single-box reference
store at three strengths — manifest fingerprint, manifest **bytes**, and
element-wise trace equality — and then each row of the validation matrix
is driven to its typed :class:`MergeManifestError`.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.distributed import (MergeManifestError, corrupt_partial_manifest,
                               delete_shard, load_partial, merge_manifests,
                               merged_dataset, partial_manifest_path,
                               truncate_partial_manifest, write_partial)
from repro.parallel import partition_ranges
from repro.simulation import TraceDataset
from repro.simulation.store import plan_fingerprint

#: must match conftest.FOLDS — the reference store's fold count
FOLDS = 2


@pytest.fixture()
def partials(plan, tmp_path):
    """Fresh two-range partials for the session plan (function-scoped:
    most error-path tests mutate them)."""
    dirs = []
    for start, stop in partition_ranges(len(plan.runs), 2):
        directory = str(tmp_path / f"part_{start}_{stop}")
        write_partial(plan, start, stop, directory)
        dirs.append(directory)
    return dirs


def _edit_partial(directory, **overrides):
    path = partial_manifest_path(directory)
    doc = json.load(open(path))
    doc.update(overrides)
    json.dump(doc, open(path, "w"))
    return doc


class TestCleanMerge:
    def test_byte_identical_with_single_box(self, plan, partials, tmp_path,
                                            reference_store,
                                            reference_manifest_bytes):
        out = str(tmp_path / "merged")
        manifest = merge_manifests(partials, out, folds=FOLDS,
                                   expect_fingerprint=plan_fingerprint(plan))
        assert manifest["fingerprint"] == plan_fingerprint(plan)
        merged_bytes = open(os.path.join(out, "manifest.json"), "rb").read()
        assert merged_bytes == reference_manifest_bytes
        ref, merged = TraceDataset.open(reference_store), merged_dataset(out)
        assert len(ref) == len(merged) == len(plan.runs)
        for i in range(len(ref)):
            a, b = ref[i], merged[i]
            for field in dataclasses.fields(a):
                v1, v2 = getattr(a, field.name), getattr(b, field.name)
                if isinstance(v1, np.ndarray):
                    assert np.array_equal(v1, v2), field.name
                else:
                    assert v1 == v2, field.name

    def test_order_independent(self, plan, partials, tmp_path,
                               reference_manifest_bytes):
        out = str(tmp_path / "merged")
        merge_manifests(list(reversed(partials)), out, folds=FOLDS)
        assert open(os.path.join(out, "manifest.json"),
                    "rb").read() == reference_manifest_bytes

    def test_exact_duplicate_range_deduped(self, plan, partials, tmp_path,
                                           reference_manifest_bytes):
        """At-least-once delivery: the same range handed in twice (a
        straggler finishing after its retry) merges as if once."""
        out = str(tmp_path / "merged")
        merge_manifests(partials + [partials[0]], out, folds=FOLDS)
        assert open(os.path.join(out, "manifest.json"),
                    "rb").read() == reference_manifest_bytes

    def test_fold_assignment_matches_writer(self, partials, tmp_path,
                                            reference_store):
        out = str(tmp_path / "merged")
        merge_manifests(partials, out, folds=FOLDS)
        ref = json.load(open(os.path.join(reference_store, "manifest.json")))
        merged = json.load(open(os.path.join(out, "manifest.json")))
        assert ([e["fold"] for e in merged["traces"]]
                == [e["fold"] for e in ref["traces"]])


class TestMergeRefusals:
    def test_empty_input(self, tmp_path):
        with pytest.raises(MergeManifestError, match="no partial"):
            merge_manifests([], str(tmp_path / "out"))

    def test_missing_partial_manifest(self, partials, tmp_path):
        os.remove(partial_manifest_path(partials[0]))
        with pytest.raises(MergeManifestError, match="did not finish"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_corrupted_partial_manifest(self, partials, tmp_path):
        corrupt_partial_manifest(partials[1])
        with pytest.raises(MergeManifestError,
                           match="corrupted or truncated"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_truncated_partial_manifest(self, partials, tmp_path):
        truncate_partial_manifest(partials[0])
        with pytest.raises(MergeManifestError,
                           match="corrupted or truncated"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_schema_version_skew(self, partials, tmp_path):
        _edit_partial(partials[0], schema_version=1)
        with pytest.raises(MergeManifestError, match="schema-version skew"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_format_version_skew(self, partials, tmp_path):
        _edit_partial(partials[0], format=999)
        with pytest.raises(MergeManifestError, match="format version"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_expect_fingerprint_mismatch(self, partials, tmp_path):
        with pytest.raises(MergeManifestError, match="fingerprint mismatch"):
            merge_manifests(partials, str(tmp_path / "out"),
                            expect_fingerprint="deadbeef")

    def test_cross_partial_fingerprint_disagreement(self, partials,
                                                    tmp_path):
        _edit_partial(partials[1], plan_fingerprint="deadbeef")
        with pytest.raises(MergeManifestError,
                           match="disagree on plan_fingerprint"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_missing_range(self, partials, tmp_path):
        with pytest.raises(MergeManifestError, match="is missing"):
            merge_manifests(partials[:1], str(tmp_path / "out"))

    def test_overlapping_ranges(self, plan, partials, tmp_path):
        overlap = str(tmp_path / "overlap")
        write_partial(plan, 1, 4, overlap)
        with pytest.raises(MergeManifestError, match="overlap"):
            merge_manifests(partials + [overlap], str(tmp_path / "out"))

    def test_divergent_duplicate(self, partials, tmp_path):
        twin = str(tmp_path / "twin")
        os.makedirs(twin)
        doc = json.load(open(partial_manifest_path(partials[0])))
        doc["entries"][0]["label"] = "tampered"
        json.dump(doc, open(partial_manifest_path(twin), "w"))
        for entry in doc["entries"]:
            open(os.path.join(twin, entry["file"]), "wb").close()
        with pytest.raises(MergeManifestError, match="divergent duplicates"):
            merge_manifests(partials + [twin], str(tmp_path / "out"))

    def test_entry_count_mismatch(self, partials, tmp_path):
        doc = json.load(open(partial_manifest_path(partials[0])))
        doc["entries"] = doc["entries"][:-1]
        json.dump(doc, open(partial_manifest_path(partials[0]), "w"))
        with pytest.raises(MergeManifestError, match="entries"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_misaligned_shard_names(self, partials, tmp_path):
        doc = json.load(open(partial_manifest_path(partials[1])))
        doc["entries"][0]["file"] = "trace_000000000.npz"
        json.dump(doc, open(partial_manifest_path(partials[1]), "w"))
        with pytest.raises(MergeManifestError, match="misaligned"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_missing_shard_file(self, partials, tmp_path):
        delete_shard(partials[0], 0)
        with pytest.raises(MergeManifestError, match="missing shard"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_occupied_output_dir(self, partials, tmp_path,
                                 reference_store):
        with pytest.raises(MergeManifestError, match="already holds"):
            merge_manifests(partials, reference_store)

    def test_tampered_entries_fail_final_fingerprint(self, partials,
                                                     tmp_path):
        """Entries edited consistently across duplicates still cannot hash
        to the recorded plan fingerprint."""
        doc = json.load(open(partial_manifest_path(partials[0])))
        for entry in doc["entries"]:
            entry["label"] = "tampered"
        json.dump(doc, open(partial_manifest_path(partials[0]), "w"))
        with pytest.raises(MergeManifestError, match="fingerprint"):
            merge_manifests(partials, str(tmp_path / "out"))

    def test_nothing_written_on_refusal(self, partials, tmp_path):
        out = str(tmp_path / "out")
        delete_shard(partials[1], 0)
        with pytest.raises(MergeManifestError):
            merge_manifests(partials, out)
        assert not os.path.exists(os.path.join(out, "manifest.json"))


class TestLoadPartial:
    def test_roundtrip(self, partials):
        doc = load_partial(partials[0])
        assert doc["directory"] == partials[0]
        assert doc["stats"]["host"]

    def test_missing_keys_rejected(self, partials):
        path = partial_manifest_path(partials[0])
        doc = json.load(open(path))
        del doc["stats"]
        json.dump(doc, open(path, "w"))
        with pytest.raises(MergeManifestError, match="missing keys"):
            load_partial(partials[0])
