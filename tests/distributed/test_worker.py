"""Range worker: partials, idempotent re-execution, crash atomicity, CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.distributed import (CRASH_AFTER_SHARDS_ENV, CRASH_EXIT_CODE,
                               DistributedCampaignError, PlanFormatError,
                               load_plan, partial_manifest_path, plan_from_doc,
                               plan_to_doc, save_plan, write_partial)
from repro.simulation.store import SCHEMA_VERSION, plan_fingerprint


def _src_path_env():
    env = dict(os.environ)
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_worker(args, env=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.distributed.worker"] + args,
        env=env or _src_path_env(), capture_output=True, text=True)


class TestPlanIO:
    def test_roundtrip_preserves_fingerprint(self, plan, tmp_path):
        path = save_plan(plan, str(tmp_path / "p.json"))
        loaded = load_plan(path)
        assert loaded == plan
        assert plan_fingerprint(loaded) == plan_fingerprint(plan)

    def test_doc_roundtrip(self, plan):
        assert plan_from_doc(plan_to_doc(plan)) == plan

    def test_truncated_file_rejected(self, plan, tmp_path):
        path = save_plan(plan, str(tmp_path / "p.json"))
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(PlanFormatError, match="unreadable"):
            load_plan(path)

    def test_edited_runs_fail_fingerprint(self, plan, tmp_path):
        doc = plan_to_doc(plan)
        doc["runs"] = doc["runs"][:-1]
        with pytest.raises(PlanFormatError, match="fingerprint mismatch"):
            plan_from_doc(doc)

    def test_format_version_skew(self, plan):
        doc = plan_to_doc(plan)
        doc["format"] = 999
        with pytest.raises(PlanFormatError, match="format version"):
            plan_from_doc(doc)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PlanFormatError):
            load_plan(str(tmp_path / "absent.json"))


class TestWritePartial:
    def test_partial_records_range_and_global_shards(self, plan, tmp_path):
        doc = write_partial(plan, 2, 5, str(tmp_path / "part"))
        assert (doc["start"], doc["stop"]) == (2, 5)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["plan_fingerprint"] == plan_fingerprint(plan)
        assert [e["file"] for e in doc["entries"]] == [
            f"trace_{i:09d}.npz" for i in (2, 3, 4)]
        for entry in doc["entries"]:
            assert os.path.exists(tmp_path / "part" / entry["file"])
            assert entry["fold"] is None  # folds are merge-time
        assert doc["stats"]["wall_s"] >= 0
        assert doc["stats"]["peak_rss_mb"] > 0

    def test_reexecution_is_identical(self, plan, tmp_path):
        first = write_partial(plan, 0, 3, str(tmp_path / "a"))
        second = write_partial(plan, 0, 3, str(tmp_path / "b"))
        assert first["entries"] == second["entries"]
        assert first["plan_fingerprint"] == second["plan_fingerprint"]

    def test_invalid_range_rejected(self, plan, tmp_path):
        for start, stop in ((3, 3), (-1, 2), (0, len(plan.runs) + 1)):
            with pytest.raises(DistributedCampaignError, match="well-formed"):
                write_partial(plan, start, stop, str(tmp_path / "x"))

    def test_unknown_shard_format_rejected(self, plan, tmp_path):
        with pytest.raises(DistributedCampaignError, match="shard_format"):
            write_partial(plan, 0, 2, str(tmp_path / "x"), shard_format="hdf5")

    def test_refuses_occupied_attempt_dir(self, plan, tmp_path):
        write_partial(plan, 0, 2, str(tmp_path / "part"))
        with pytest.raises(DistributedCampaignError, match="fresh attempt"):
            write_partial(plan, 0, 2, str(tmp_path / "part"))


class TestWorkerCLI:
    def test_clean_run_writes_partial(self, plan_path, tmp_path):
        out = str(tmp_path / "out")
        result = _run_worker(["--plan", plan_path, "--start", "0",
                              "--stop", "2", "--out", out])
        assert result.returncode == 0, result.stderr
        assert "range [0, 2) done" in result.stdout
        doc = json.load(open(partial_manifest_path(out)))
        assert len(doc["entries"]) == 2

    def test_crash_leaves_no_partial_manifest(self, plan_path, tmp_path):
        """A mid-range kill must be indistinguishable from 'not done':
        shards may exist, the partial manifest must not."""
        out = str(tmp_path / "out")
        env = _src_path_env()
        env[CRASH_AFTER_SHARDS_ENV] = "1"
        result = _run_worker(["--plan", plan_path, "--start", "0",
                              "--stop", "3", "--out", out], env=env)
        assert result.returncode == CRASH_EXIT_CODE
        assert not os.path.exists(partial_manifest_path(out))
        assert os.path.exists(os.path.join(out, "trace_000000000.npz"))

    def test_bad_range_exits_nonzero(self, plan_path, tmp_path):
        result = _run_worker(["--plan", plan_path, "--start", "5",
                              "--stop", "2", "--out", str(tmp_path / "o")])
        assert result.returncode == 2
        assert "well-formed" in result.stderr

    def test_missing_plan_exits_nonzero(self, tmp_path):
        result = _run_worker(["--plan", str(tmp_path / "absent.json"),
                              "--start", "0", "--stop", "1",
                              "--out", str(tmp_path / "o")])
        assert result.returncode == 2
        assert "unreadable plan" in result.stderr
