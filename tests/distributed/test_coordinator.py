"""Coordinator battery: multi-worker parity plus the chaos matrix.

Every scenario ends in exactly one of the two allowed states: a merged
dataset byte-identical to the single-box reference, or a typed
:class:`DistributedCampaignError`.  Workers here are real subprocesses
(the ``python -m repro.distributed.worker`` entrypoint), so crashes are
real ``os._exit`` deaths and stragglers are really killed.
"""

import os

import pytest

from repro.distributed import (DistributedCampaignError, FlakyLauncher,
                               LocalLauncher, SSHLauncher, WorkerError,
                               WorkerSpec, run_distributed_campaign)
from repro.parallel import partition_ranges
from repro.simulation.store import plan_fingerprint

FOLDS = 2


def _manifest_bytes(directory):
    with open(os.path.join(directory, "manifest.json"), "rb") as fh:
        return fh.read()


def _assert_byte_identical(out_dir, reference_manifest_bytes):
    assert _manifest_bytes(out_dir) == reference_manifest_bytes


class TestCleanRuns:
    def test_two_host_parity(self, plan, tmp_path, reference_manifest_bytes):
        out = str(tmp_path / "out")
        result = run_distributed_campaign(plan, out, n_hosts=2, folds=FOLDS)
        _assert_byte_identical(out, reference_manifest_bytes)
        assert result.manifest["fingerprint"] == plan_fingerprint(plan)
        assert result.retries == 0
        assert len(result.stats) == len(result.ranges) == 2
        for stat in result.stats:
            assert stat["host"] and stat["wall_s"] >= 0
        # scratch is cleaned up after a successful merge
        assert not os.path.exists(out + ".work")

    def test_host_count_is_a_wall_clock_knob(self, plan, tmp_path,
                                             reference_manifest_bytes):
        """n_hosts never changes the dataset — the parity contract, one
        level up from workers=/batch_size=."""
        for n_hosts in (1, 3):
            out = str(tmp_path / f"out{n_hosts}")
            run_distributed_campaign(plan, out, n_hosts=n_hosts, folds=FOLDS)
            _assert_byte_identical(out, reference_manifest_bytes)

    def test_keep_work_preserves_partials(self, plan, tmp_path):
        out = str(tmp_path / "out")
        run_distributed_campaign(plan, out, n_hosts=2, keep_work=True)
        work = out + ".work"
        assert os.path.exists(os.path.join(work, "plan.json"))
        assert any(name.startswith("range_") for name in os.listdir(work))

    def test_empty_plan_rejected(self, plan, tmp_path):
        import dataclasses
        empty = dataclasses.replace(plan, runs=())
        with pytest.raises(DistributedCampaignError, match="empty"):
            run_distributed_campaign(empty, str(tmp_path / "out"))


class TestChaos:
    def test_worker_crash_mid_range_recovers(self, plan, tmp_path,
                                             reference_manifest_bytes):
        """A hard mid-range death (os._exit, shards written, no partial
        manifest) is retried into a fresh attempt dir and the merged
        result is still byte-identical."""
        ranges = partition_ranges(len(plan.runs), 2)
        launcher = FlakyLauncher(crash_ranges={ranges[0]: 1})
        out = str(tmp_path / "out")
        result = run_distributed_campaign(plan, out, n_hosts=2,
                                          launcher=launcher, folds=FOLDS)
        _assert_byte_identical(out, reference_manifest_bytes)
        assert result.retries == 1
        attempts = [s.attempt for s in launcher.launched
                    if s.range_key == ranges[0]]
        assert attempts == [0, 1]

    def test_straggler_timeout_retry_identical(self, plan, tmp_path,
                                               reference_manifest_bytes):
        ranges = partition_ranges(len(plan.runs), 2)
        launcher = FlakyLauncher(stall_ranges={ranges[1]: 60.0})
        out = str(tmp_path / "out")
        result = run_distributed_campaign(plan, out, n_hosts=2,
                                          launcher=launcher, folds=FOLDS,
                                          timeout_s=5.0)
        _assert_byte_identical(out, reference_manifest_bytes)
        assert result.retries == 1

    def test_both_ranges_crash_then_recover(self, plan, tmp_path,
                                            reference_manifest_bytes):
        ranges = partition_ranges(len(plan.runs), 2)
        launcher = FlakyLauncher(crash_ranges={r: 1 for r in ranges})
        out = str(tmp_path / "out")
        result = run_distributed_campaign(plan, out, n_hosts=2,
                                          launcher=launcher, folds=FOLDS)
        _assert_byte_identical(out, reference_manifest_bytes)
        assert result.retries == 2

    def test_reordered_completions(self, plan, tmp_path,
                                   reference_manifest_bytes):
        """The first range finishing *last* (a tolerable straggler, no
        timeout set) changes nothing about the merged dataset."""
        ranges = partition_ranges(len(plan.runs), 2)
        launcher = FlakyLauncher(stall_ranges={ranges[0]: 1.5})
        out = str(tmp_path / "out")
        result = run_distributed_campaign(plan, out, n_hosts=2,
                                          launcher=launcher, folds=FOLDS)
        _assert_byte_identical(out, reference_manifest_bytes)
        assert result.retries == 0

    def test_retries_exhausted_raises_worker_error(self, plan, tmp_path):
        ranges = partition_ranges(len(plan.runs), 2)
        launcher = FlakyLauncher(crash_ranges={ranges[0]: 1},
                                 fail_attempts=99)
        out = str(tmp_path / "out")
        with pytest.raises(WorkerError, match="no retries left"):
            run_distributed_campaign(plan, out, n_hosts=2, launcher=launcher,
                                     max_retries=1)
        # no dataset materialises on failure
        assert not os.path.exists(os.path.join(out, "manifest.json"))

    def test_worker_error_is_typed(self, plan, tmp_path):
        launcher = FlakyLauncher(
            crash_ranges={r: 0 for r in partition_ranges(len(plan.runs), 2)},
            fail_attempts=99)
        with pytest.raises(DistributedCampaignError):
            run_distributed_campaign(plan, str(tmp_path / "out"), n_hosts=2,
                                     launcher=launcher, max_retries=0)


class TestLaunchers:
    def test_worker_argv_roundtrip(self):
        spec = WorkerSpec(start=3, stop=9, attempt=1, plan_path="/w/plan.json",
                          out_dir="/w/r/attempt1", workers=2, batch_size=8)
        argv = spec.worker_argv()
        assert argv[:2] == ["-m", "repro.distributed.worker"]
        for flag, value in (("--plan", "/w/plan.json"), ("--start", "3"),
                            ("--stop", "9"), ("--out", "/w/r/attempt1"),
                            ("--workers", "2"), ("--batch-size", "8")):
            assert value == argv[argv.index(flag) + 1]

    def test_local_launcher_env_overlay(self):
        launcher = LocalLauncher(env={"REPRO_DIST_SLEEP_SECONDS": "1"})
        spec = WorkerSpec(start=0, stop=1, attempt=0, plan_path="p",
                          out_dir="o")
        env = launcher._worker_env(spec)
        assert env["REPRO_DIST_SLEEP_SECONDS"] == "1"
        assert any(os.path.isdir(os.path.join(part, "repro"))
                   for part in env["PYTHONPATH"].split(os.pathsep))

    def test_ssh_command_shape(self):
        launcher = SSHLauncher(hosts=["nodeA", "nodeB"],
                               remote_src="/mnt/repo/src")
        spec = WorkerSpec(start=0, stop=4, attempt=0,
                          plan_path="/mnt/work/plan.json",
                          out_dir="/mnt/work/range/attempt0")
        argv = launcher.command_for(spec, "nodeA")
        assert argv[0] == "ssh"
        assert "nodeA" in argv
        remote = argv[-1]
        assert "PYTHONPATH=/mnt/repo/src" in remote
        assert "repro.distributed.worker" in remote
        assert "--start 0 --stop 4" in remote

    def test_ssh_requires_hosts(self):
        with pytest.raises(ValueError, match="at least one host"):
            SSHLauncher(hosts=[])
