"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier


def xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestFitting:
    def test_perfectly_separable(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(min_samples_split=2,
                                      min_samples_leaf=1).fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)

    def test_xor_needs_depth_two(self):
        X, y = xor_data()
        deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
        accuracy = (deep.predict(X) == y).mean()
        assert accuracy > 0.95

    def test_depth_one_cannot_solve_xor(self):
        X, y = xor_data()
        stump = DecisionTreeClassifier(max_depth=1, min_samples_leaf=1).fit(X, y)
        accuracy = (stump.predict(X) == y).mean()
        assert accuracy < 0.7

    def test_max_depth_respected(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth_ <= 3

    def test_min_samples_leaf(self):
        X, y = xor_data(n=40)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.counts.sum() >= 10
            else:
                check(node.left)
                check(node.right)
        check(tree._root)

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, size=(300, 1))
        y = np.digitize(X[:, 0], [-0.5, 0.5])  # 3 classes
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.9
        assert len(tree.classes_) == 3

    def test_pure_node_stops_splitting(self):
        X = np.zeros((20, 1))
        y = np.zeros(20, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree._root.is_leaf

    def test_class_labels_preserved(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([5, 5, 9, 9])  # non-contiguous labels
        tree = DecisionTreeClassifier(min_samples_split=2,
                                      min_samples_leaf=1).fit(X, y)
        assert set(tree.predict(X)) == {5, 9}


class TestPredictProba:
    def test_probabilities_sum_to_one(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_single_sample_input(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.predict_proba(X[0]).shape == (1, 2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))


class TestValidation:
    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))
