"""Tests for the LSTM layer (gradient check) and LSTM classifier."""

import numpy as np
import pytest

from repro.ml.nn import LSTMClassifier, LSTMLayer


class TestLSTMLayer:
    def test_forward_shape(self):
        layer = LSTMLayer(3, 5, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((4, 6, 3)))
        assert out.shape == (4, 6, 5)

    def test_rejects_2d_input(self):
        layer = LSTMLayer(3, 5)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 3)))

    def test_gradient_check_params(self):
        """BPTT gradients match finite differences on a tiny problem."""
        rng = np.random.default_rng(0)
        layer = LSTMLayer(2, 3, rng=rng)
        x = rng.normal(size=(2, 4, 2))
        upstream = rng.normal(size=(2, 4, 3))

        def loss():
            return np.sum(layer.forward(x) * upstream)

        layer.forward(x)
        layer.backward(upstream)
        h = 1e-6
        for param, grad, idx in [
            (layer.Wx, layer.gWx, (0, 1)),
            (layer.Wh, layer.gWh, (2, 5)),
            (layer.b, layer.gb, (4,)),
        ]:
            analytic = grad[idx]
            param[idx] += h
            plus = loss()
            param[idx] -= 2 * h
            minus = loss()
            param[idx] += h
            numeric = (plus - minus) / (2 * h)
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_gradient_check_input(self):
        rng = np.random.default_rng(1)
        layer = LSTMLayer(2, 3, rng=rng)
        x = rng.normal(size=(1, 3, 2))
        upstream = rng.normal(size=(1, 3, 3))
        layer.forward(x)
        grad_x = layer.backward(upstream)
        h = 1e-6
        x2 = x.copy()
        x2[0, 1, 0] += h
        plus = np.sum(layer.forward(x2) * upstream)
        x2[0, 1, 0] -= 2 * h
        minus = np.sum(layer.forward(x2) * upstream)
        numeric = (plus - minus) / (2 * h)
        assert grad_x[0, 1, 0] == pytest.approx(numeric, rel=1e-4)

    def test_forget_bias_initialised_to_one(self):
        layer = LSTMLayer(2, 4)
        np.testing.assert_array_equal(layer.b[4:8], 1.0)


class TestLSTMClassifier:
    def test_learns_sequence_sum_sign(self):
        """Classify whether the sequence sum is positive — needs memory."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(600, 6, 2))
        y = (X.sum(axis=(1, 2)) > 0).astype(int)
        clf = LSTMClassifier(hidden=(8,), max_epochs=80, lr=0.01, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_learns_order_dependent_task(self):
        """Label depends on the LAST step's sign — tests recurrence."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(600, 5, 1))
        y = (X[:, -1, 0] > 0).astype(int)
        clf = LSTMClassifier(hidden=(8,), max_epochs=60, lr=0.01, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_stacked_architecture(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4, 2))
        y = (X.sum(axis=(1, 2)) > 0).astype(int)
        clf = LSTMClassifier(hidden=(8, 4), max_epochs=5, seed=0).fit(X, y)
        # LSTM(8) -> LSTM(4) -> last-step -> Dense(2)
        from repro.ml.nn.lstm import LSTMLayer as L
        lstm_layers = [l for l in clf.layers if isinstance(l, L)]
        assert [l.hidden for l in lstm_layers] == [8, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMClassifier(hidden=())
