"""Serial/parallel parity of the training-job layer (repro.ml.training).

The acceptance contract of the job API: training with ``workers=N`` must
produce element-wise identical monitors — every tree node, every weight —
to the serial loop, for every N, with or without memory-mapped datasets.
"""

import numpy as np
import pytest

from repro.ml import (
    TrainingJob,
    job_dataset,
    job_grid,
    monitor_state,
    run_training_jobs,
    select_job_traces,
    train_job,
)
from repro.simulation import kfold_split


def assert_same_monitors(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert a.job == b.job
        assert (a.n_samples, a.n_features) == (b.n_samples, b.n_features)
        state_a, state_b = monitor_state(a.monitor), monitor_state(b.monitor)
        assert len(state_a) == len(state_b)
        for arr_a, arr_b in zip(state_a, state_b):
            assert np.array_equal(arr_a, arr_b), a.name


@pytest.fixture(scope="module")
def small_jobs():
    """A cheap but representative grid: every kind, two folds (tiny
    network widths keep the suite fast; parity is width-independent)."""
    jobs = []
    for fold in (0, 1):
        common = dict(fold=fold, folds=2)
        jobs.append(TrainingJob.make("dt", max_depth=5, **common))
        jobs.append(TrainingJob.make("mlp", hidden=(12,), max_epochs=2,
                                     **common))
        jobs.append(TrainingJob.make("lstm", hidden=(6,), max_epochs=1,
                                     **common))
    return jobs


@pytest.fixture(scope="module")
def serial_results(small_jobs, tiny_campaign_traces):
    return run_training_jobs(small_jobs, tiny_campaign_traces, workers=1)


class TestTrainingJob:
    def test_make_normalises_hyperparams(self):
        a = TrainingJob.make("mlp", max_epochs=3, hidden=(8,))
        b = TrainingJob.make("MLP", hidden=(8,), max_epochs=3)
        assert a == b
        assert a.job_seed() == b.job_seed()

    def test_seed_depends_on_identity_only(self):
        base = TrainingJob.make("mlp", fold=0, folds=4)
        assert base.job_seed() == TrainingJob.make("mlp", fold=0,
                                                   folds=4).job_seed()
        assert base.job_seed() != TrainingJob.make("mlp", fold=1,
                                                   folds=4).job_seed()
        assert base.job_seed() != TrainingJob.make("lstm", fold=0,
                                                   folds=4).job_seed()
        assert base.job_seed() != TrainingJob.make(
            "mlp", fold=0, folds=4, seed=1).job_seed()

    def test_dt_and_mlp_share_a_dataset(self):
        dt = TrainingJob.make("dt", fold=0, folds=2)
        mlp = TrainingJob.make("mlp", fold=0, folds=2)
        lstm = TrainingJob.make("lstm", fold=0, folds=2)
        assert dt.dataset_key() == mlp.dataset_key()
        assert dt.dataset_key() != lstm.dataset_key()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TrainingJob.make("svm")
        with pytest.raises(ValueError, match="folds"):
            TrainingJob.make("dt", fold=0)
        with pytest.raises(ValueError, match="fold"):
            TrainingJob.make("dt", fold=3, folds=2)
        with pytest.raises(ValueError, match="window"):
            TrainingJob.make("lstm", window=0)


class TestTraceSelection:
    def test_fold_selection_matches_kfold_split(self, tiny_campaign_traces):
        job = TrainingJob.make("dt", fold=1, folds=3)
        selected = select_job_traces(job, tiny_campaign_traces)
        train, _ = kfold_split(tiny_campaign_traces, 3, 1)
        assert list(selected) == train

    def test_patient_filter(self, tiny_campaign_traces):
        job = TrainingJob.make("dt", patient_id="B")
        assert len(select_job_traces(job, tiny_campaign_traces)) == \
            len(tiny_campaign_traces)  # the tiny campaign is all patient B
        nobody = TrainingJob.make("dt", patient_id="Z")
        assert len(select_job_traces(nobody, tiny_campaign_traces)) == 0

    def test_no_fold_returns_everything(self, tiny_campaign_traces):
        job = TrainingJob.make("dt")
        assert list(select_job_traces(job, tiny_campaign_traces)) == \
            list(tiny_campaign_traces)


class TestRunTrainingJobs:
    def test_results_in_job_order(self, small_jobs, serial_results):
        assert [r.job for r in serial_results] == small_jobs

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_identical_to_serial(self, small_jobs, serial_results,
                                          tiny_campaign_traces, workers):
        parallel = run_training_jobs(small_jobs, tiny_campaign_traces,
                                     workers=workers)
        assert_same_monitors(serial_results, parallel)

    def test_mmap_root_identical_to_in_memory(self, small_jobs,
                                              serial_results,
                                              tiny_campaign_traces,
                                              tmp_path):
        mapped = run_training_jobs(small_jobs, tiny_campaign_traces,
                                   workers=2, mmap_root=str(tmp_path))
        assert_same_monitors(serial_results, mapped)
        # dt+mlp share one point dataset per fold, lstm adds a window one
        slugs = {job.dataset_slug() for job in small_jobs}
        assert len(slugs) == 4
        for slug in slugs:
            assert (tmp_path / slug / "X.npy").exists()

    def test_training_from_mmap_dataset_directly(self, tiny_campaign_traces,
                                                 tmp_path):
        job = TrainingJob.make("dt", max_depth=4)
        X, y = job_dataset(job, tiny_campaign_traces,
                           mmap_root=str(tmp_path))
        assert isinstance(X, np.memmap)
        trained = train_job(job, X, y)
        in_memory = train_job(job, *job_dataset(job, tiny_campaign_traces))
        assert_same_monitors([trained], [in_memory])

    def test_different_folds_train_different_monitors(self, serial_results):
        by_job = {r.job: r for r in serial_results}
        a = by_job[TrainingJob.make("dt", fold=0, folds=2, max_depth=5)]
        b = by_job[TrainingJob.make("dt", fold=1, folds=2, max_depth=5)]
        states = (monitor_state(a.monitor), monitor_state(b.monitor))
        assert any(not np.array_equal(x, y) for x, y in zip(*states)) \
            or len(states[0]) != len(states[1])

    def test_job_grid_cartesian(self):
        jobs = job_grid(["mlp"], folds=3, fold_values=[0, 1, 2],
                        patient_ids=["A", "B"], max_epochs=1)
        assert len(jobs) == 6
        assert {(j.patient_id, j.fold) for j in jobs} == \
            {(p, f) for p in ("A", "B") for f in (0, 1, 2)}

    def test_empty_job_list(self, tiny_campaign_traces):
        assert run_training_jobs([], tiny_campaign_traces) == []

    def test_invalid_chunks_per_worker(self, small_jobs,
                                       tiny_campaign_traces):
        with pytest.raises(ValueError, match="chunks_per_worker"):
            run_training_jobs(small_jobs, tiny_campaign_traces,
                              chunks_per_worker=0)

    def test_monitors_replay_cleanly(self, serial_results,
                                     tiny_campaign_traces):
        from repro.simulation import replay_monitor
        trace = tiny_campaign_traces[0]
        for result in serial_results:
            alerts, hazards = replay_monitor(result.monitor, trace)
            assert alerts.shape == (len(trace),)
            assert hazards.shape == (len(trace),)

    def test_lazy_dataset_jobs(self, tiny_campaign_traces, tmp_path,
                               assert_traces_equal):
        """Jobs select lazily (index views) on store-backed campaigns and
        train to the same monitors as on the in-memory list."""
        from repro.simulation import CampaignStoreWriter, TraceDataset
        root = str(tmp_path / "store")
        with CampaignStoreWriter(root, "glucosym", 150, folds=2) as sink:
            for trace in tiny_campaign_traces:
                sink.write(trace)
        dataset = TraceDataset.open(root, cache_size=4)
        job = TrainingJob.make("dt", fold=0, folds=2, max_depth=4)
        lazy_view = select_job_traces(job, dataset)
        eager = select_job_traces(job, list(tiny_campaign_traces))
        assert len(lazy_view) == len(eager)
        for a, b in zip(eager, lazy_view):
            assert_traces_equal(a, b)
        from_store = run_training_jobs([job], dataset)
        from_memory = run_training_jobs([job], list(tiny_campaign_traces))
        assert_same_monitors(from_store, from_memory)
