"""Tests for dataset builders and the ML monitor wrappers."""

import numpy as np
import pytest

from repro.controllers import ControlAction
from repro.core import ContextVector
from repro.hazards import HazardType
from repro.ml import (
    FEATURE_NAMES,
    build_point_dataset,
    build_window_dataset,
    context_features,
    point_labels,
    trace_features,
    train_dt_monitor,
)


@pytest.fixture(scope="module")
def small_traces(tiny_campaign_traces):
    # the session-scoped shared campaign (simulated once, see conftest)
    return tiny_campaign_traces


class TestFeatures:
    def test_feature_matrix_shape(self, small_traces):
        features = trace_features(small_traces[0])
        assert features.shape == (150, len(FEATURE_NAMES))

    def test_one_hot_actions_sum_to_one(self, small_traces):
        features = trace_features(small_traces[0])
        one_hot = features[:, 6:10]
        np.testing.assert_allclose(one_hot.sum(axis=1), 1.0)

    def test_context_features_match_trace_layout(self, small_traces):
        trace = small_traces[0]
        features = trace_features(trace)
        t = 10
        bg_rate = (trace.cgm[t] - trace.cgm[t - 1]) / trace.dt
        ctx = ContextVector(t=trace.t[t], bg=trace.cgm[t], bg_rate=bg_rate,
                            iob=trace.iob[t], iob_rate=trace.iob_rate[t],
                            rate=trace.cmd_rate[t], bolus=trace.cmd_bolus[t],
                            action=ControlAction(int(trace.action[t])))
        np.testing.assert_allclose(context_features(ctx), features[t])


class TestLabels:
    def test_safe_trace_all_zero(self, small_traces):
        safe = next(t for t in small_traces if not t.hazardous)
        assert point_labels(safe).sum() == 0

    def test_hazardous_trace_positive_before_hazard(self, small_traces):
        hazardous = next(t for t in small_traces if t.hazardous)
        labels = point_labels(hazardous)
        th = hazardous.hazard_label.first_hazard
        # Eq. 7: every cycle before a future hazard is positive
        assert labels[:th + 1].all()

    def test_labels_monotone_nonincreasing(self, small_traces):
        """Once the last hazard has passed, labels return to 0."""
        hazardous = next(t for t in small_traces if t.hazardous)
        labels = point_labels(hazardous)
        assert set(np.diff(labels)) <= {-1, 0}

    def test_multiclass_labels_match_types(self, small_traces):
        hazardous = next(t for t in small_traces if t.hazardous)
        labels = point_labels(hazardous, multiclass=True)
        assert set(labels) <= {0, 1, 2}
        first_type = int(hazardous.hazard_label.first_type)
        assert labels[0] == first_type


class TestDatasets:
    def test_point_dataset_shapes(self, small_traces):
        X, y = build_point_dataset(small_traces)
        assert X.shape == (len(small_traces) * 150, len(FEATURE_NAMES))
        assert y.shape == (len(X),)
        assert set(np.unique(y)) <= {0, 1}

    def test_window_dataset_shapes(self, small_traces):
        X, y = build_window_dataset(small_traces, k=6)
        assert X.shape == (len(small_traces) * (150 - 5), 6, len(FEATURE_NAMES))
        assert len(X) == len(y)

    def test_window_alignment(self, small_traces):
        """Window i ends at cycle i+k-1 and carries that cycle's label."""
        trace = small_traces[0]
        X, y = build_window_dataset([trace], k=6)
        features = trace_features(trace)
        np.testing.assert_allclose(X[0], features[0:6])
        np.testing.assert_allclose(X[10][-1], features[15])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            build_point_dataset([])
        with pytest.raises(ValueError):
            build_window_dataset([], k=6)

    def test_invalid_k(self, small_traces):
        with pytest.raises(ValueError):
            build_window_dataset(small_traces, k=0)


class TestMonitors:
    def test_dt_monitor_detects_trained_hazards(self, small_traces):
        monitor = train_dt_monitor(small_traces, max_depth=6)
        hazardous = next(t for t in small_traces if t.hazardous)
        alerts = 0
        features = trace_features(hazardous)
        labels = point_labels(hazardous)
        predictions = monitor.model.predict(features)
        # in-sample: the tree should recover most positive labels
        recall = (predictions[labels == 1] == 1).mean()
        assert recall > 0.6

    def test_dt_monitor_verdict_interface(self, small_traces):
        monitor = train_dt_monitor(small_traces, max_depth=6)
        ctx = ContextVector(t=0.0, bg=120.0, bg_rate=0.0, iob=0.0,
                            iob_rate=0.0, rate=1.5, bolus=0.0,
                            action=ControlAction.KEEP)
        verdict = monitor.observe(ctx)
        assert verdict.alert in (True, False)
        if verdict.alert:
            assert verdict.hazard in (HazardType.H1, HazardType.H2)

    def test_binary_monitor_infers_hazard_from_bg(self, small_traces):
        monitor = train_dt_monitor(small_traces, max_depth=6)
        # force an alert-ish context: extreme overdose pattern
        ctx = ContextVector(t=0.0, bg=70.0, bg_rate=-2.0, iob=8.0,
                            iob_rate=0.05, rate=10.0, bolus=0.0,
                            action=ControlAction.INCREASE)
        verdict = monitor.observe(ctx)
        if verdict.alert:
            assert verdict.hazard == HazardType.H1  # BG below target

    def test_lstm_monitor_warmup(self):
        from repro.ml import LSTMMonitor
        from repro.ml.nn import LSTMClassifier
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 6, len(FEATURE_NAMES)))
        y = (X[:, -1, 0] > 0).astype(int)
        model = LSTMClassifier(hidden=(4,), max_epochs=2, seed=0).fit(X, y)
        monitor = LSTMMonitor(model, k=6)
        ctx = ContextVector(t=0.0, bg=120.0, bg_rate=0.0, iob=0.0,
                            iob_rate=0.0, rate=1.5, bolus=0.0,
                            action=ControlAction.KEEP)
        # fewer than k observations: silent by construction
        for _ in range(5):
            assert not monitor.observe(ctx).alert
        # reset clears the buffer
        monitor.observe(ctx)
        monitor.reset()
        assert len(monitor._buffer) == 0
