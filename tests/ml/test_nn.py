"""Tests for the numpy neural-network substrate (layers, losses, Adam, MLP)."""

import numpy as np
import pytest

from repro.ml.nn import (
    Adam,
    Dense,
    Dropout,
    MLPClassifier,
    ReLU,
    Standardizer,
    softmax,
    softmax_cross_entropy,
)


class TestLayers:
    def test_dense_forward_shape(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_dense_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x)
        upstream = rng.normal(size=out.shape)
        grad_x = layer.backward(upstream)
        h = 1e-6
        # check dL/dW numerically for one entry (L = sum(out * upstream))
        for (i, j) in [(0, 0), (2, 1)]:
            layer.W[i, j] += h
            plus = np.sum(layer.forward(x) * upstream)
            layer.W[i, j] -= 2 * h
            minus = np.sum(layer.forward(x) * upstream)
            layer.W[i, j] += h
            numeric = (plus - minus) / (2 * h)
            assert layer.gW[i, j] == pytest.approx(numeric, rel=1e-4)
        # and dL/dx
        x2 = x.copy()
        x2[1, 2] += h
        plus = np.sum(layer.forward(x2) * upstream)
        x2[1, 2] -= 2 * h
        minus = np.sum(layer.forward(x2) * upstream)
        numeric = (plus - minus) / (2 * h)
        assert grad_x[1, 2] == pytest.approx(numeric, rel=1e-4)

    def test_relu(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 2.0]])
        np.testing.assert_array_equal(layer.backward(np.ones((1, 2))),
                                      [[0.0, 1.0]])

    def test_dropout_off_at_inference(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_scales_at_training(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 1))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.1)  # inverted dropout
        assert (out == 0).any()

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stability(self):
        probs = softmax(np.array([[1000.0, 1001.0]]))
        assert np.isfinite(probs).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_check(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 3))
        targets = np.array([0, 1, 2, 1, 0])
        _, grad = softmax_cross_entropy(logits, targets)
        h = 1e-6
        for (i, j) in [(0, 0), (3, 2)]:
            logits[i, j] += h
            plus, _ = softmax_cross_entropy(logits, targets)
            logits[i, j] -= 2 * h
            minus, _ = softmax_cross_entropy(logits, targets)
            logits[i, j] += h
            assert grad[i, j] == pytest.approx((plus - minus) / (2 * h), rel=1e-3)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), np.array([0, 5]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), np.array([0]))


class TestAdam:
    def test_minimizes_quadratic(self):
        param = np.array([5.0])
        adam = Adam([param], lr=0.1)
        for _ in range(500):
            adam.step([2.0 * param])  # d/dx x^2
        assert abs(param[0]) < 0.05

    def test_grad_count_mismatch(self):
        adam = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            adam.step([np.zeros(2), np.zeros(2)])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], lr=0.0)


class TestStandardizer:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = Standardizer().fit(X).transform(X)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = Standardizer().fit(X).transform(X)
        assert np.isfinite(scaled).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2)))


class TestMLPClassifier:
    def test_learns_linearly_separable(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(600, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        clf = MLPClassifier(hidden=(16,), max_epochs=60, lr=0.01, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(800, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        clf = MLPClassifier(hidden=(32, 16), max_epochs=150, dropout=0.0,
                            lr=0.01, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_early_stopping_recorded(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(int)
        clf = MLPClassifier(hidden=(8,), max_epochs=100, patience=3,
                            seed=0).fit(X, y)
        assert 1 <= len(clf.history) <= 100

    def test_predict_proba_normalised(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        clf = MLPClassifier(hidden=(8,), max_epochs=5, seed=0).fit(X, y)
        proba = clf.predict_proba(X[:7])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden=())
        with pytest.raises(ValueError):
            MLPClassifier(n_classes=1)
        with pytest.raises(ValueError):
            MLPClassifier().fit(np.zeros((5, 2)), np.zeros(5))  # too few
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((1, 2)))

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(600, 2))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        clf = MLPClassifier(hidden=(16,), n_classes=3, max_epochs=80,
                            lr=0.01, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.85
