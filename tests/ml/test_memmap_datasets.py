"""Tests for memory-mapped dataset materialisation (repro.ml.memmap and
the ``mmap_dir`` / ``workers`` paths of the dataset builders)."""

import os

import numpy as np
import pytest

from repro.ml import (
    MemmapDatasetError,
    NpyStreamWriter,
    build_point_dataset,
    build_window_dataset,
    open_memmap_array,
)
from repro.ml.memmap import meta_path, read_meta


class TestNpyStreamWriter:
    def test_roundtrips_appended_blocks(self, tmp_path):
        path = str(tmp_path / "a.npy")
        with NpyStreamWriter(path, (3,)) as writer:
            writer.append(np.arange(6, dtype=float).reshape(2, 3))
            writer.append(np.arange(6, 12, dtype=float).reshape(2, 3))
        expected = np.arange(12, dtype=float).reshape(4, 3)
        # both the plain loader and the mmap loader must agree
        assert np.array_equal(np.load(path), expected)
        assert np.array_equal(open_memmap_array(path), expected)

    def test_three_dimensional_rows(self, tmp_path):
        path = str(tmp_path / "w.npy")
        blocks = np.arange(60, dtype=float).reshape(5, 4, 3)
        with NpyStreamWriter(path, (4, 3)) as writer:
            writer.append(blocks[:2])
            writer.append(blocks[2:])
        assert np.array_equal(np.load(path), blocks)

    def test_scalar_rows_and_int_dtype(self, tmp_path):
        path = str(tmp_path / "y.npy")
        with NpyStreamWriter(path, (), dtype=np.int64) as writer:
            writer.append(np.arange(7))
        loaded = open_memmap_array(path)
        assert loaded.shape == (7,)
        assert loaded.dtype == np.int64

    def test_empty_array_is_valid(self, tmp_path):
        path = str(tmp_path / "e.npy")
        NpyStreamWriter(path, (4,)).close()
        assert open_memmap_array(path).shape == (0, 4)

    def test_mismatched_block_shape_rejected(self, tmp_path):
        with NpyStreamWriter(str(tmp_path / "m.npy"), (3,)) as writer:
            with pytest.raises(ValueError, match="shape"):
                writer.append(np.zeros((2, 4)))
            writer.append(np.zeros((1, 3)))  # writer still usable

    def test_exception_removes_partial_file(self, tmp_path):
        path = str(tmp_path / "p.npy")
        with pytest.raises(RuntimeError, match="boom"):
            with NpyStreamWriter(path, (3,)) as writer:
                writer.append(np.zeros((2, 3)))
                raise RuntimeError("boom")
        assert not os.path.exists(path)

    def test_append_after_close_rejected(self, tmp_path):
        writer = NpyStreamWriter(str(tmp_path / "c.npy"), (3,))
        writer.close()
        with pytest.raises(MemmapDatasetError, match="closed"):
            writer.append(np.zeros((1, 3)))


class TestOpenMemmapArray:
    def test_missing_file(self, tmp_path):
        with pytest.raises(MemmapDatasetError, match="missing"):
            open_memmap_array(str(tmp_path / "nope.npy"))

    def test_truncated_payload_detected(self, tmp_path):
        path = str(tmp_path / "t.npy")
        with NpyStreamWriter(path, (3,)) as writer:
            writer.append(np.ones((8, 3)))
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-16])  # header promises more rows than exist
        with pytest.raises(MemmapDatasetError, match="corrupted"):
            open_memmap_array(path)

    def test_garbage_header_detected(self, tmp_path):
        path = str(tmp_path / "g.npy")
        with open(path, "wb") as fh:
            fh.write(b"this is not an npy file" * 10)
        with pytest.raises(MemmapDatasetError, match="corrupted"):
            open_memmap_array(path)

    def test_result_is_read_only(self, tmp_path):
        path = str(tmp_path / "r.npy")
        with NpyStreamWriter(path, (2,)) as writer:
            writer.append(np.ones((3, 2)))
        loaded = open_memmap_array(path)
        assert isinstance(loaded, np.memmap)
        assert not loaded.flags.writeable


class TestMmapBuilders:
    """The ``mmap_dir`` streaming path vs the in-memory builders."""

    def test_point_roundtrip_equality(self, tmp_path, tiny_campaign_traces):
        X_mem, y_mem = build_point_dataset(tiny_campaign_traces)
        X, y = build_point_dataset(tiny_campaign_traces,
                                   mmap_dir=str(tmp_path / "pt"))
        assert isinstance(X, np.memmap) and isinstance(y, np.memmap)
        assert np.array_equal(X_mem, X)
        assert np.array_equal(y_mem, y)

    def test_window_roundtrip_equality(self, tmp_path, tiny_campaign_traces):
        X_mem, y_mem = build_window_dataset(tiny_campaign_traces, k=6)
        X, y = build_window_dataset(tiny_campaign_traces, k=6,
                                    mmap_dir=str(tmp_path / "win"))
        assert np.array_equal(X_mem, X)
        assert np.array_equal(y_mem, y)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_build_identical(self, tmp_path, tiny_campaign_traces,
                                      workers):
        X_mem, y_mem = build_point_dataset(tiny_campaign_traces)
        X, y = build_point_dataset(
            tiny_campaign_traces, workers=workers,
            mmap_dir=str(tmp_path / f"w{workers}"))
        assert np.array_equal(X_mem, X)
        assert np.array_equal(y_mem, y)
        Xp, yp = build_point_dataset(tiny_campaign_traces, workers=workers)
        assert np.array_equal(X_mem, Xp)
        assert np.array_equal(y_mem, yp)

    def test_finished_directory_is_reused(self, tmp_path,
                                          tiny_campaign_traces):
        directory = str(tmp_path / "reuse")
        X1, _ = build_point_dataset(tiny_campaign_traces, mmap_dir=directory)
        stamp = os.path.getmtime(os.path.join(directory, "X.npy"))
        X2, _ = build_point_dataset(tiny_campaign_traces, mmap_dir=directory)
        assert os.path.getmtime(os.path.join(directory, "X.npy")) == stamp
        assert np.array_equal(X1, X2)

    def test_mismatched_request_rejected(self, tmp_path,
                                         tiny_campaign_traces):
        directory = str(tmp_path / "mix")
        build_point_dataset(tiny_campaign_traces, mmap_dir=directory)
        with pytest.raises(MemmapDatasetError, match="requested"):
            build_point_dataset(tiny_campaign_traces, multiclass=True,
                                mmap_dir=directory)
        with pytest.raises(MemmapDatasetError, match="requested"):
            build_window_dataset(tiny_campaign_traces, k=6,
                                 mmap_dir=directory)

    def test_different_trace_count_rejected(self, tmp_path,
                                            tiny_campaign_traces):
        """A finished directory built from one selection must not answer a
        request built from a differently-sized one."""
        directory = str(tmp_path / "count")
        build_point_dataset(tiny_campaign_traces, mmap_dir=directory)
        with pytest.raises(MemmapDatasetError, match="trace selection"):
            build_point_dataset(tiny_campaign_traces[:10],
                                mmap_dir=directory)

    def test_interrupted_build_rejected(self, tmp_path,
                                        tiny_campaign_traces):
        """Arrays without the sidecar are the remains of a crash, not a
        dataset to trust (the sidecar is written last, atomically)."""
        directory = tmp_path / "crash"
        directory.mkdir()
        (directory / "X.npy").write_bytes(b"partial")
        with pytest.raises(MemmapDatasetError, match="interrupted"):
            build_point_dataset(tiny_campaign_traces,
                                mmap_dir=str(directory))

    def test_truncated_array_behind_valid_sidecar(self, tmp_path,
                                                  tiny_campaign_traces):
        directory = str(tmp_path / "trunc")
        build_point_dataset(tiny_campaign_traces, mmap_dir=directory)
        x_path = os.path.join(directory, "X.npy")
        data = open(x_path, "rb").read()
        with open(x_path, "wb") as fh:
            fh.write(data[:-64])
        with pytest.raises(MemmapDatasetError, match="corrupted"):
            build_point_dataset(tiny_campaign_traces, mmap_dir=directory)

    def test_sidecar_contents(self, tmp_path, tiny_campaign_traces):
        directory = str(tmp_path / "meta")
        X, _ = build_window_dataset(tiny_campaign_traces, k=6,
                                    mmap_dir=directory)
        meta = read_meta(directory)
        assert meta["kind"] == "window"
        assert meta["k"] == 6
        assert meta["multiclass"] is False
        assert meta["n_rows"] == len(X)
        assert os.path.exists(meta_path(directory))

    def test_empty_input_leaves_no_dataset(self, tmp_path):
        directory = str(tmp_path / "empty")
        with pytest.raises(ValueError, match="no traces"):
            build_point_dataset([], mmap_dir=directory)
        # the aborted build must not leave a reusable-looking directory
        assert not os.path.exists(meta_path(directory))


class TestWindowEdgeCases:
    """Larger-than-trace windows, in-memory and memory-mapped alike."""

    def test_short_traces_skipped_identically(self, tmp_path,
                                              tiny_campaign_traces):
        k = len(tiny_campaign_traces[0]) + 1  # longer than every trace
        with pytest.raises(ValueError, match="long enough"):
            build_window_dataset(tiny_campaign_traces, k=k)
        with pytest.raises(ValueError, match="long enough"):
            build_window_dataset(tiny_campaign_traces, k=k,
                                 mmap_dir=str(tmp_path / "big"))
        assert not os.path.exists(meta_path(str(tmp_path / "big")))

    def test_window_equal_to_trace_length(self, tmp_path,
                                          tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        k = len(trace)
        X_mem, y_mem = build_window_dataset([trace], k=k)
        assert X_mem.shape[0] == 1  # exactly one full-trace window
        X, y = build_window_dataset([trace], k=k,
                                    mmap_dir=str(tmp_path / "eq"))
        assert np.array_equal(X_mem, X)
        assert np.array_equal(y_mem, y)
