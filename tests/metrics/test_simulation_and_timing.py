"""Tests for simulation-level metrics, timing metrics and Eq. 9 risk."""

import numpy as np
import pytest

from repro.fi import FaultKind, FaultSpec, FaultTarget
from repro.metrics import (
    first_alert_step,
    hazard_coverage,
    mitigation_outcome,
    reaction_stats,
    simulation_confusion,
    time_to_hazard_stats,
    trace_risk_index,
)
from tests.simulation.test_scenario_trace import build_trace

HYPO_BG = np.concatenate([np.full(10, 120.0), np.linspace(120, 35, 10),
                          np.full(10, 35.0)])
FAULT = FaultSpec(FaultKind.MAX, FaultTarget.RATE, 8, 6)


class TestSimulationLevel:
    def test_detected_hazard_is_tp(self):
        trace = build_trace(n=30, alerts={12}, hazard_bg=HYPO_BG, fault=FAULT)
        cm = simulation_confusion([trace], [trace.alert])
        assert cm.tp == 1 and cm.fn == 0

    def test_missed_hazard_is_fn(self):
        trace = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)
        cm = simulation_confusion([trace], [trace.alert])
        assert cm.fn == 1

    def test_pre_fault_alert_is_fp(self):
        trace = build_trace(n=30, alerts={2}, hazard_bg=HYPO_BG, fault=FAULT)
        cm = simulation_confusion([trace], [trace.alert])
        assert cm.fp == 1  # alert at step 2 < fault step 8
        assert cm.tp == 0 and cm.fn == 1  # nothing in the post region

    def test_silent_safe_trace_is_tn(self):
        trace = build_trace(n=30, fault=FAULT)
        cm = simulation_confusion([trace], [trace.alert])
        assert cm.tn == 2  # both regions silent and safe

    def test_alert_on_safe_trace_is_fp(self):
        trace = build_trace(n=30, alerts={20}, fault=FAULT)
        cm = simulation_confusion([trace], [trace.alert])
        assert cm.fp == 1

    def test_length_mismatch(self):
        trace = build_trace(n=30)
        with pytest.raises(ValueError):
            simulation_confusion([trace], [np.zeros(5, dtype=bool)])


class TestTiming:
    def test_hazard_coverage(self):
        hazardous = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)
        safe = build_trace(n=30)
        assert hazard_coverage([hazardous, safe]) == 0.5

    def test_hazard_coverage_empty(self):
        with pytest.raises(ValueError):
            hazard_coverage([])

    def test_tth_stats(self):
        trace = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)
        stats = time_to_hazard_stats([trace])
        assert stats["count"] == 1
        assert stats["mean"] == trace.time_to_hazard()

    def test_tth_stats_empty(self):
        stats = time_to_hazard_stats([build_trace(n=30)])
        assert stats["count"] == 0
        assert np.isnan(stats["mean"])

    def test_first_alert_step(self):
        assert first_alert_step(np.array([0, 0, 1, 1])) == 2
        assert first_alert_step(np.zeros(4)) is None

    def test_reaction_stats(self):
        trace = build_trace(n=30, alerts={5}, hazard_bg=HYPO_BG, fault=FAULT)
        stats = reaction_stats([trace], [trace.alert])
        th = trace.hazard_label.first_hazard
        assert stats.samples == [(th - 5) * 5.0]
        assert stats.early_detection_rate == 1.0

    def test_reaction_stats_missed_hazard(self):
        trace = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)
        stats = reaction_stats([trace], [trace.alert])
        assert stats.n_hazardous == 1
        assert stats.n_detected == 0
        assert stats.early_detection_rate == 0.0


class TestMitigationOutcome:
    def test_recovery_counted(self):
        base = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)
        fixed = build_trace(n=30, alerts={5}, fault=FAULT)  # now safe
        outcome = mitigation_outcome("m", [base], [fixed])
        assert outcome.baseline_hazards == 1
        assert outcome.recovered == 1
        assert outcome.recovery_rate == 1.0
        assert outcome.new_hazards == 0

    def test_new_hazard_counted_and_risk_charged(self):
        base = build_trace(n=30)  # safe without monitor
        harmed = build_trace(n=30, alerts={3}, hazard_bg=HYPO_BG, fault=FAULT)
        outcome = mitigation_outcome("m", [base], [harmed])
        assert outcome.new_hazards == 1
        assert outcome.average_risk > 0

    def test_missed_hazard_charged(self):
        base = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)
        still = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)  # no alerts
        outcome = mitigation_outcome("m", [base], [still])
        assert outcome.missed == 1
        assert outcome.average_risk > 0

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            mitigation_outcome("m", [build_trace()], [])

    def test_trace_risk_index_higher_for_hypo(self):
        safe = build_trace(n=30)
        hypo = build_trace(n=30, hazard_bg=HYPO_BG, fault=FAULT)
        assert trace_risk_index(hypo) > trace_risk_index(safe)


class TestRenderTable:
    def test_render(self):
        from repro.metrics import render_table
        text = render_table(("a", "b"), [(1, 0.5), ("x", 123.456)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "x" in lines[3]

    def test_row_width_mismatch(self):
        from repro.metrics import render_table
        with pytest.raises(ValueError):
            render_table(("a",), [(1, 2)])

    def test_nan_renders_as_dash(self):
        from repro.metrics import format_value
        assert format_value(float("nan")) == "-"
