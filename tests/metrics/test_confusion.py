"""Tests for the tolerance-window confusion matrix (Table IV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import ConfusionCounts, tolerance_confusion


def seq(*indices, n=30):
    out = np.zeros(n, dtype=bool)
    for i in indices:
        out[i] = True
    return out


class TestConfusionCounts:
    def test_rates(self):
        cm = ConfusionCounts(tp=8, fp=2, fn=2, tn=88)
        assert cm.fpr == pytest.approx(2 / 90)
        assert cm.fnr == pytest.approx(2 / 10)
        assert cm.accuracy == pytest.approx(96 / 100)
        assert cm.precision == pytest.approx(0.8)
        assert cm.recall == pytest.approx(0.8)
        assert cm.f1 == pytest.approx(0.8)

    def test_degenerate_rates_are_zero(self):
        cm = ConfusionCounts()
        assert cm.fpr == 0.0 and cm.fnr == 0.0 and cm.f1 == 0.0

    def test_addition(self):
        total = ConfusionCounts(1, 2, 3, 4) + ConfusionCounts(10, 20, 30, 40)
        assert (total.tp, total.fp, total.fn, total.tn) == (11, 22, 33, 44)

    def test_as_row_order(self):
        cm = ConfusionCounts(tp=1, fp=0, fn=0, tn=1)
        fpr, fnr, acc, f1 = cm.as_row()
        assert acc == 1.0 and f1 == 1.0


class TestToleranceWindow:
    def test_perfect_silence_on_safe_trace(self):
        cm = tolerance_confusion(seq(), seq(), delta=6)
        assert cm.fp == 0 and cm.fn == 0 and cm.tn == 30

    def test_early_alert_counts_as_tp(self):
        """Alert 4 cycles before the hazard: episode detected."""
        pred = seq(10)
        truth = seq(14, 15, 16)
        cm = tolerance_confusion(pred, truth, delta=6)
        assert cm.fn == 0
        assert cm.tp > 0

    def test_alert_too_early_is_fp(self):
        """Alert far outside the anchored window is a false positive."""
        pred = seq(0)
        truth = seq(25, 26)
        cm = tolerance_confusion(pred, truth, delta=6)
        assert cm.fp == 1
        assert cm.fn > 0  # the episode itself was never announced

    def test_missed_hazard_counts_fn_per_positive_sample(self):
        truth = seq(20, 21, 22)
        cm = tolerance_confusion(seq(), truth, delta=6)
        # positives: samples within delta before the run + the run itself
        assert cm.fn == 6 + 3
        assert cm.tp == 0

    def test_alert_with_no_hazard_is_fp(self):
        cm = tolerance_confusion(seq(5), seq(), delta=6)
        assert cm.fp == 1
        assert cm.tn == 29

    def test_alert_during_episode_detects_it(self):
        pred = seq(21)
        truth = seq(20, 21, 22)
        cm = tolerance_confusion(pred, truth, delta=6)
        assert cm.fn == 0

    def test_two_episodes_scored_independently(self):
        truth = np.zeros(60, dtype=bool)
        truth[10:13] = True   # detected
        truth[40:43] = True   # missed
        pred = seq(8, n=60)
        cm = tolerance_confusion(pred, truth, delta=4)
        assert cm.tp > 0 and cm.fn > 0

    def test_counts_partition_all_samples(self):
        rng = np.random.default_rng(0)
        pred = rng.random(50) < 0.2
        truth = rng.random(50) < 0.1
        cm = tolerance_confusion(pred, truth, delta=6)
        assert cm.total == 50

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tolerance_confusion(seq(), seq(n=10), delta=6)

    def test_negative_delta(self):
        with pytest.raises(ValueError):
            tolerance_confusion(seq(), seq(), delta=-1)

    @given(st.integers(min_value=0, max_value=29),
           st.integers(min_value=0, max_value=29))
    @settings(max_examples=60, deadline=None)
    def test_property_single_alert_single_hazard(self, alert_at, hazard_at):
        cm = tolerance_confusion(seq(alert_at), seq(hazard_at), delta=6)
        detected = hazard_at - 6 <= alert_at <= hazard_at
        if detected:
            assert cm.fn == 0
        else:
            assert cm.fn > 0
