"""Tests for MonitorVerdict and the context-aware monitor."""

import pytest

from repro.controllers import ControlAction
from repro.core import (
    ContextVector,
    MonitorVerdict,
    NO_ALERT,
    cawot_monitor,
    cawt_monitor,
)
from repro.hazards import HazardType


def ctx(bg=150.0, bg_rate=1.0, iob=1.0, iob_rate=-0.01,
        action=ControlAction.DECREASE, rate=0.5, bolus=0.0):
    return ContextVector(t=0.0, bg=bg, bg_rate=bg_rate, iob=iob,
                         iob_rate=iob_rate, rate=rate, bolus=bolus,
                         action=action)


class TestVerdict:
    def test_no_alert_constant(self):
        assert not NO_ALERT.alert
        assert NO_ALERT.hazard is None

    def test_alert_requires_hazard(self):
        with pytest.raises(ValueError):
            MonitorVerdict(alert=True)

    def test_alert_with_hazard(self):
        v = MonitorVerdict(alert=True, hazard=HazardType.H1, triggered=("rule6",))
        assert v.alert and v.hazard == HazardType.H1


class TestCAWOT:
    def test_alerts_on_rule1_context(self):
        monitor = cawot_monitor()
        verdict = monitor.observe(ctx())
        assert verdict.alert
        assert verdict.hazard == HazardType.H2
        assert "rule1" in verdict.triggered

    def test_silent_in_safe_context(self):
        monitor = cawot_monitor()
        verdict = monitor.observe(ctx(bg=120.0, bg_rate=0.0,
                                      action=ControlAction.KEEP, rate=1.0))
        assert not verdict.alert

    def test_low_bg_requires_stop(self):
        monitor = cawot_monitor()
        verdict = monitor.observe(ctx(bg=60.0, bg_rate=-1.0, iob=0.0,
                                      iob_rate=0.0, action=ControlAction.KEEP,
                                      rate=1.0))
        assert verdict.alert
        assert verdict.hazard == HazardType.H1

    def test_name(self):
        assert cawot_monitor().name == "CAWOT"


class TestCAWT:
    def test_learned_threshold_suppresses_false_alarm(self):
        # with a tight beta1, a modest IOB no longer counts as "too low"
        cawot = cawot_monitor()
        cawt = cawt_monitor({"beta1": 0.5})
        context = ctx(iob=1.0)  # IOB 1.0: below default 6, above learned 0.5
        assert cawot.observe(context).alert
        assert not cawt.observe(context).alert

    def test_learned_threshold_still_catches_uca(self):
        cawt = cawt_monitor({"beta1": 0.5})
        assert cawt.observe(ctx(iob=0.2)).alert

    def test_partial_thresholds_keep_defaults_elsewhere(self):
        cawt = cawt_monitor({"beta1": 0.5})
        assert cawt.thresholds["beta21"] == 70.0

    def test_unknown_param_rejected(self):
        with pytest.raises(KeyError, match="unknown rule parameters"):
            cawt_monitor({"nope": 1.0})

    def test_with_thresholds_copy(self):
        base = cawt_monitor({"beta1": 0.5})
        updated = base.with_thresholds({"beta1": 1.5}, name="CAWT2")
        assert base.thresholds["beta1"] == 0.5
        assert updated.thresholds["beta1"] == 1.5
        assert updated.name == "CAWT2"

    def test_multiple_rules_can_trigger(self):
        monitor = cawot_monitor()
        # hyper + stop: rule 9 triggers; keep-insulin rules don't
        verdict = monitor.observe(ctx(bg=200.0, bg_rate=1.0, iob=0.1,
                                      iob_rate=-0.01, rate=0.0,
                                      action=ControlAction.STOP))
        assert "rule9" in verdict.triggered

    def test_rule_subset_monitor(self):
        from repro.core import aps_rules
        only_rule10 = [r for r in aps_rules() if r.index == 10]
        from repro.core import ContextAwareMonitor
        monitor = ContextAwareMonitor(rules=only_rule10)
        assert not monitor.observe(ctx()).alert  # rule1 context, not rule10
        assert monitor.observe(ctx(bg=60.0, action=ControlAction.KEEP)).alert
