"""Tests for ContextVector and the generic SCS framework."""

import pytest

from repro.controllers import ControlAction
from repro.core import ContextVector, HMSEntry, SafetyContextSpec, UCASEntry
from repro.hazards import HazardType
from repro.stl import Globally, Implies, Not, Signal, Since, parse


def ctx(action=ControlAction.KEEP):
    return ContextVector(t=10.0, bg=150.0, bg_rate=0.5, iob=1.2,
                         iob_rate=-0.01, rate=1.0, bolus=0.0, action=action)


class TestContextVector:
    def test_channels_include_mu_and_actions(self):
        values = ctx().channels()
        assert values["BG"] == 150.0
        assert values["BG'"] == 0.5
        assert values["IOB"] == 1.2
        assert values["IOB'"] == -0.01
        assert values["u4"] == 1.0
        assert values["u1"] == 0.0

    def test_one_hot_action(self):
        values = ctx(action=ControlAction.STOP).channels()
        assert values["u3"] == 1.0
        assert sum(values[f"u{i}"] for i in range(1, 5)) == 1.0

    def test_features_vector(self):
        features = ctx().features()
        assert len(features) == 7
        assert features[0] == 150.0
        assert features[-1] == float(int(ControlAction.KEEP))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ctx().bg = 1.0


class TestUCASEntry:
    def make_entry(self, required=False):
        return UCASEntry(name="test", context=parse("BG > 180 & IOB < beta1"),
                         action=ControlAction.DECREASE, hazard=HazardType.H2,
                         required=required)

    def test_to_stl_shape(self):
        stl = self.make_entry().to_stl(0, 720)
        assert isinstance(stl, Globally)
        assert isinstance(stl.child, Implies)
        assert isinstance(stl.child.consequent, Not)

    def test_required_consequent_positive(self):
        stl = self.make_entry(required=True).to_stl()
        assert isinstance(stl.child.consequent, Signal)

    def test_violation_body(self):
        body = self.make_entry().violation_body()
        # context AND the forbidden action
        assert "u1" in str(body)

    def test_parameters(self):
        assert self.make_entry().parameters() == frozenset({"beta1"})


class TestHMSEntry:
    def make_entry(self, ts=15.0):
        return HMSEntry(name="mitigate-low", context=parse("BG < 70"),
                        safe_actions=(ControlAction.STOP,), ts=ts)

    def test_to_stl_uses_since(self):
        stl = self.make_entry().to_stl()
        assert isinstance(stl, Globally)
        assert isinstance(stl.child, Since)

    def test_eq2_semantics_on_trace(self):
        """F[0,ts](u3) S (BG<70) holds when stop follows entering context."""
        from repro.stl import Trace, satisfaction
        stl = self.make_entry(ts=10.0).to_stl()
        trace = Trace({
            "BG": [100.0, 60.0, 58.0, 57.0],
            "u3": [0.0, 0.0, 1.0, 0.0],
        }, dt=5.0)
        out = satisfaction(stl.child, trace)
        assert bool(out[1]) and bool(out[2])

    def test_validation(self):
        with pytest.raises(ValueError, match="safe action"):
            HMSEntry(name="x", context=parse("BG < 70"), safe_actions=(), ts=5)
        with pytest.raises(ValueError, match="ts"):
            HMSEntry(name="x", context=parse("BG < 70"),
                     safe_actions=(ControlAction.STOP,), ts=-1)

    def test_multiple_safe_actions_or(self):
        entry = HMSEntry(name="x", context=parse("BG < 70"),
                         safe_actions=(ControlAction.STOP, ControlAction.DECREASE),
                         ts=10)
        assert "u3" in str(entry.to_stl()) and "u1" in str(entry.to_stl())


class TestSafetyContextSpec:
    def test_parameters_merge(self):
        spec = SafetyContextSpec(ucas=(
            UCASEntry("a", parse("IOB < beta1"), ControlAction.DECREASE,
                      HazardType.H2),
            UCASEntry("b", parse("IOB > beta2"), ControlAction.INCREASE,
                      HazardType.H1),
        ))
        assert set(spec.parameters()) == {"beta1", "beta2"}

    def test_empty_spec(self):
        spec = SafetyContextSpec()
        assert spec.parameters() == {}
        assert spec.monitor_formulas() == {}
