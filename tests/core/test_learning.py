"""Tests for loss functions and STL threshold learning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LOSSES,
    learn_fold_thresholds,
    learn_thresholds,
    mae_loss,
    mine_rule_samples,
    mse_loss,
    telex_loss,
    tmee_loss,
)
from repro.core.learning import ROBUSTNESS_SCALES, RuleSamples, _fit_one
from repro.core.rules import aps_rules


RULES = {rule.index: rule for rule in aps_rules()}


class TestLossShapes:
    """The Fig. 3 properties of the four loss functions."""

    def test_tmee_minimum_near_small_positive_slack(self):
        r = np.linspace(-2, 4, 6001)
        values, _ = tmee_loss(r)
        r_min = r[np.argmin(values)]
        assert 0.2 < r_min < 0.8

    def test_tmee_penalizes_violations_exponentially(self):
        v_neg2, _ = tmee_loss(np.array([-2.0]))
        v_neg1, _ = tmee_loss(np.array([-1.0]))
        assert v_neg2[0] > 2.0 * v_neg1[0]

    def test_tmee_linear_growth_for_loose_thresholds(self):
        v10, _ = tmee_loss(np.array([10.0]))
        v20, _ = tmee_loss(np.array([20.0]))
        assert v20[0] - v10[0] == pytest.approx(10.0, rel=0.01)

    def test_telex_minimum_looser_than_tmee(self):
        r = np.linspace(-2, 6, 8001)
        tmee_min = r[np.argmin(tmee_loss(r)[0])]
        telex_min = r[np.argmin(telex_loss(r)[0])]
        assert telex_min > tmee_min + 1.0

    def test_mse_mae_symmetric_minimum_at_zero(self):
        r = np.linspace(-3, 3, 601)
        assert abs(r[np.argmin(mse_loss(r)[0])]) < 0.02
        assert abs(r[np.argmin(mae_loss(r)[0])]) < 0.02

    def test_mse_mae_do_not_distinguish_violation_sign(self):
        v_pos, _ = mse_loss(np.array([1.5]))
        v_neg, _ = mse_loss(np.array([-1.5]))
        assert v_pos[0] == v_neg[0]

    @pytest.mark.parametrize("name", sorted(LOSSES))
    def test_gradients_match_finite_differences(self, name):
        loss = LOSSES[name]
        r = np.array([-2.0, -0.5, 0.3, 1.7, 5.0])
        _, grad = loss(r)
        h = 1e-6
        numeric = (loss(r + h)[0] - loss(r - h)[0]) / (2 * h)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-6)

    @given(st.floats(min_value=-20, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_tmee_nonnegative_everywhere(self, r):
        value, _ = tmee_loss(np.array([r]))
        assert value[0] > -0.51  # bounded below (min of -1/(1+e^-2r) term)


class TestFitOne:
    def _samples(self, rule_index, values, safe=()):
        return RuleSamples(rule=RULES[rule_index],
                           values=np.asarray(values, dtype=float),
                           safe_values=np.asarray(safe, dtype=float))

    def test_empty_samples_keep_default(self):
        fit = _fit_one(self._samples(1, []), "tmee", True)
        assert fit.used_default
        assert fit.value == RULES[1].default

    def test_lt_rule_threshold_covers_all_samples(self):
        """Rule 1 is 'IOB < beta': coverage needs beta >= max(samples)."""
        fit = _fit_one(self._samples(1, [0.5, 1.2, 0.9]), "tmee", True)
        assert fit.value >= 1.2
        assert fit.violations == 0

    def test_lt_rule_threshold_is_tight(self):
        fit = _fit_one(self._samples(1, [0.5, 1.2, 0.9]), "tmee", True)
        scale = ROBUSTNESS_SCALES["IOB"]
        assert fit.value <= 1.2 + 2.0 * scale  # tight: small margin only

    def test_gt_rule_threshold_covers_all_samples(self):
        """Rule 6 is 'IOB > beta': coverage needs beta <= min(samples)."""
        fit = _fit_one(self._samples(6, [2.5, 3.8, 4.4]), "tmee", True)
        assert fit.value <= 2.5
        assert fit.value >= 2.5 - 2.0 * ROBUSTNESS_SCALES["IOB"]
        assert fit.violations == 0

    def test_bg_rule_uses_bg_scale(self):
        fit = _fit_one(self._samples(10, [55.0, 68.0, 62.0]), "tmee", True)
        assert 68.0 <= fit.value <= 68.0 + 2.0 * ROBUSTNESS_SCALES["BG"]

    def test_unconstrained_mse_lands_mid_data_and_violates(self):
        fit = _fit_one(self._samples(1, [0.0, 2.0]), "mse", False)
        assert 0.5 < fit.value < 1.5  # near the mean
        assert fit.violations >= 1    # the upper sample is not covered

    def test_tmee_tighter_than_telex(self):
        data = [0.5, 1.2, 0.9]
        tight = _fit_one(self._samples(1, data), "tmee", True)
        loose = _fit_one(self._samples(1, data), "telex", True)
        assert tight.value < loose.value

    def test_converges(self):
        fit = _fit_one(self._samples(1, np.random.default_rng(0).uniform(0, 3, 100)),
                       "tmee", True)
        assert fit.converged


class TestLearnFromTraces:
    @pytest.fixture(scope="class")
    def hazardous_traces(self, tiny_campaign_traces):
        # the session-scoped shared campaign (simulated once, see conftest)
        return tiny_campaign_traces

    def test_unknown_loss_rejected(self, hazardous_traces):
        with pytest.raises(KeyError, match="unknown loss"):
            learn_thresholds(hazardous_traces, loss="nope")

    def test_learned_result_structure(self, hazardous_traces):
        result = learn_thresholds(hazardous_traces)
        assert len(result.fits) == 12
        assert set(result.thresholds) == {r.param for r in aps_rules()}

    def test_some_rules_learned_from_campaign(self, hazardous_traces):
        result = learn_thresholds(hazardous_traces)
        assert len(result.learned_params) >= 1

    def test_no_training_violations_with_coverage(self, hazardous_traces):
        result = learn_thresholds(hazardous_traces, enforce_coverage=True)
        assert all(f.violations == 0 for f in result.fits)

    def test_mining_window_restricts_samples(self, hazardous_traces):
        narrow = mine_rule_samples(hazardous_traces, window=6)
        wide = mine_rule_samples(hazardous_traces, window=None)
        for n, w in zip(narrow, wide):
            assert n.count <= w.count

    def test_safe_traces_contribute_nothing(self, tiny_fault_free_traces):
        samples = mine_rule_samples(tiny_fault_free_traces)
        assert all(s.count == 0 for s in samples)

    def test_invalid_window(self, hazardous_traces):
        with pytest.raises(ValueError, match="window"):
            mine_rule_samples(hazardous_traces, window=0)


def _assert_fits_equal(a, b):
    """Field-wise ThresholdFit equality tolerating the NaN loss of
    unfitted rules (NaN != NaN defeats plain dataclass equality)."""
    assert len(a) == len(b)
    for fa, fb in zip(a, b):
        assert (fa.param, fa.value, fa.n_samples, fa.used_default,
                fa.converged, fa.violations) == \
               (fb.param, fb.value, fb.n_samples, fb.used_default,
                fb.converged, fb.violations)
        assert fa.loss == fb.loss or (np.isnan(fa.loss) and np.isnan(fb.loss))


class TestFoldThresholds:
    """Per-fold fan-out of the threshold learner (learn_fold_thresholds)."""

    def test_matches_manual_kfold_loop(self, tiny_campaign_traces,
                                       tiny_fault_free_traces):
        from repro.simulation import kfold_split
        folds = 3
        ff = list(tiny_fault_free_traces)
        results = learn_fold_thresholds(tiny_campaign_traces, folds,
                                        fault_free=ff)
        assert len(results) == folds
        for fold, result in enumerate(results):
            train, _ = kfold_split(tiny_campaign_traces, folds, fold)
            expected = learn_thresholds(train + ff)
            assert result.thresholds == expected.thresholds
            _assert_fits_equal(result.fits, expected.fits)

    def test_parallel_folds_identical_to_serial(self, tiny_campaign_traces):
        serial = learn_fold_thresholds(tiny_campaign_traces, 4)
        for workers in (2, 4):
            parallel = learn_fold_thresholds(tiny_campaign_traces, 4,
                                             workers=workers)
            assert len(parallel) == len(serial)
            for a, b in zip(serial, parallel):
                assert a.thresholds == b.thresholds
                _assert_fits_equal(a.fits, b.fits)

    def test_folds_differ_from_each_other(self, tiny_campaign_traces):
        """Different training sides must be able to learn different
        thresholds — a sanity check that the split is actually applied."""
        results = learn_fold_thresholds(tiny_campaign_traces, 2)
        full = learn_thresholds(tiny_campaign_traces)
        assert any(r.thresholds != full.thresholds for r in results)

    def test_accepts_generators(self, tiny_campaign_traces):
        lazy = (t for t in tiny_campaign_traces)
        results = learn_fold_thresholds(lazy, 2)
        expected = learn_fold_thresholds(tiny_campaign_traces, 2)
        assert [r.thresholds for r in results] == \
               [r.thresholds for r in expected]

    def test_invalid_folds(self, tiny_campaign_traces):
        with pytest.raises(ValueError, match="folds"):
            learn_fold_thresholds(tiny_campaign_traces, 1)
