"""Tests for the hazard-mitigation strategies (Algorithm 1)."""

import pytest

from repro.controllers import ControlAction
from repro.core import (
    ContextVector,
    FixedMitigator,
    MonitorVerdict,
    NO_ALERT,
    ProportionalMitigator,
)
from repro.hazards import HazardType


def ctx(bg=150.0, iob=1.0, rate=2.0, bolus=0.5):
    return ContextVector(t=0.0, bg=bg, bg_rate=0.0, iob=iob, iob_rate=0.0,
                         rate=rate, bolus=bolus, action=ControlAction.INCREASE)


def alert(hazard):
    return MonitorVerdict(alert=True, hazard=hazard, triggered=("rule",))


class TestFixedMitigator:
    def test_no_alert_passes_through(self):
        m = FixedMitigator()
        assert m.correct(NO_ALERT, ctx()) == (2.0, 0.5)

    def test_h1_cuts_insulin(self):
        m = FixedMitigator()
        assert m.correct(alert(HazardType.H1), ctx()) == (0.0, 0.0)

    def test_h2_commands_fixed_max(self):
        m = FixedMitigator(max_rate=5.0)
        assert m.correct(alert(HazardType.H2), ctx()) == (5.0, 0.0)

    def test_invalid_max_rate(self):
        with pytest.raises(ValueError):
            FixedMitigator(max_rate=0.0)


class TestProportionalMitigator:
    def test_h1_cuts_insulin(self):
        m = ProportionalMitigator()
        assert m.correct(alert(HazardType.H1), ctx()) == (0.0, 0.0)

    def test_h2_scales_with_excess(self):
        m = ProportionalMitigator(isf=50.0, bg_target=120.0, horizon_h=2.0)
        rate_low, _ = m.correct(alert(HazardType.H2), ctx(bg=200.0, iob=0.0))
        rate_high, _ = m.correct(alert(HazardType.H2), ctx(bg=300.0, iob=0.0))
        assert rate_high > rate_low > 0

    def test_h2_discounts_iob(self):
        m = ProportionalMitigator(isf=50.0, bg_target=120.0)
        with_iob, _ = m.correct(alert(HazardType.H2), ctx(bg=200.0, iob=1.0))
        without, _ = m.correct(alert(HazardType.H2), ctx(bg=200.0, iob=0.0))
        assert with_iob < without

    def test_h2_capped(self):
        m = ProportionalMitigator(max_rate=3.0)
        rate, _ = m.correct(alert(HazardType.H2), ctx(bg=500.0, iob=0.0))
        assert rate == 3.0

    def test_no_negative_dose(self):
        m = ProportionalMitigator()
        rate, _ = m.correct(alert(HazardType.H2), ctx(bg=125.0, iob=5.0))
        assert rate == 0.0

    def test_no_alert_passthrough(self):
        m = ProportionalMitigator()
        assert m.correct(NO_ALERT, ctx()) == (2.0, 0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProportionalMitigator(isf=0.0)
