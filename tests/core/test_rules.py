"""Tests for the Table I APS rules and their STL equivalence."""

import numpy as np
import pytest

from repro.controllers import ControlAction
from repro.core import ContextVector, aps_rules, aps_scs, default_thresholds
from repro.core.rules import IOB_RATE_EPS
from repro.hazards import HazardType
from repro.stl import Trace, satisfaction


def ctx(bg=150.0, bg_rate=1.0, iob=1.0, iob_rate=-0.01,
        action=ControlAction.DECREASE, rate=0.5, bolus=0.0, t=0.0):
    return ContextVector(t=t, bg=bg, bg_rate=bg_rate, iob=iob,
                         iob_rate=iob_rate, rate=rate, bolus=bolus,
                         action=action)


RULES = {rule.index: rule for rule in aps_rules()}


class TestRuleTable:
    def test_twelve_rules(self):
        assert len(aps_rules()) == 12
        assert sorted(RULES) == list(range(1, 13))

    def test_params_unique(self):
        params = [r.param for r in aps_rules()]
        assert len(set(params)) == 12

    def test_hazard_assignment_matches_table1(self):
        h2_rules = {1, 2, 3, 4, 5, 9, 11}
        for idx, rule in RULES.items():
            expected = HazardType.H2 if idx in h2_rules else HazardType.H1
            assert rule.hazard == expected, f"rule {idx}"

    def test_action_assignment_matches_table1(self):
        assert all(RULES[i].action == ControlAction.DECREASE for i in (1, 2, 3, 4, 5))
        assert all(RULES[i].action == ControlAction.INCREASE for i in (6, 7, 8))
        assert RULES[9].action == ControlAction.STOP
        assert RULES[10].action == ControlAction.STOP and RULES[10].required
        assert all(RULES[i].action == ControlAction.KEEP for i in (11, 12))

    def test_default_thresholds_cover_all_params(self):
        defaults = default_thresholds()
        assert set(defaults) == {r.param for r in aps_rules()}
        assert defaults["beta21"] == 70.0


class TestRule1:
    """Rule 1: BG>BGT & BG'>0 & IOB'<0 & IOB<b1 => !u1."""

    def test_violation(self):
        assert RULES[1].violated(ctx(), threshold=2.0)

    def test_no_violation_when_action_differs(self):
        assert not RULES[1].violated(ctx(action=ControlAction.KEEP), 2.0)

    def test_no_violation_below_target(self):
        assert not RULES[1].violated(ctx(bg=100.0), 2.0)

    def test_no_violation_when_bg_falling(self):
        assert not RULES[1].violated(ctx(bg_rate=-1.0), 2.0)

    def test_no_violation_when_iob_rising(self):
        assert not RULES[1].violated(ctx(iob_rate=0.02), 2.0)

    def test_no_violation_when_iob_above_threshold(self):
        assert not RULES[1].violated(ctx(iob=3.0), threshold=2.0)

    def test_threshold_boundary(self):
        assert not RULES[1].violated(ctx(iob=2.0), threshold=2.0)  # strict <


class TestRule6:
    """Rule 6: BG<BGT & BG'<0 & IOB'>0 & IOB>b6 => !u2."""

    def test_violation(self):
        c = ctx(bg=90.0, bg_rate=-1.0, iob=3.0, iob_rate=0.02,
                action=ControlAction.INCREASE)
        assert RULES[6].violated(c, threshold=2.0)

    def test_no_violation_low_iob(self):
        c = ctx(bg=90.0, bg_rate=-1.0, iob=1.0, iob_rate=0.02,
                action=ControlAction.INCREASE)
        assert not RULES[6].violated(c, threshold=2.0)


class TestRule9:
    """Rule 9: BG>BGT & IOB<b9 => !u3 (no rate conditions)."""

    def test_violation_any_rates(self):
        c = ctx(bg=200.0, bg_rate=-5.0, iob=0.1, iob_rate=0.5,
                action=ControlAction.STOP)
        assert RULES[9].violated(c, threshold=1.0)


class TestRule10:
    """Rule 10: BG<b21 => u3 (required action)."""

    def test_violation_when_not_stopping(self):
        c = ctx(bg=60.0, action=ControlAction.KEEP)
        assert RULES[10].violated(c, threshold=70.0)

    def test_satisfied_when_stopping(self):
        c = ctx(bg=60.0, action=ControlAction.STOP)
        assert not RULES[10].violated(c, threshold=70.0)

    def test_not_applicable_above_threshold(self):
        c = ctx(bg=90.0, action=ControlAction.KEEP)
        assert not RULES[10].violated(c, threshold=70.0)


class TestIOBRateEquality:
    def test_zero_band(self):
        rule = RULES[2]  # IOB'=0 case
        base = dict(bg=150.0, bg_rate=1.0, iob=1.0, action=ControlAction.DECREASE)
        assert rule.violated(ctx(iob_rate=0.0, **base), 2.0)
        assert rule.violated(ctx(iob_rate=IOB_RATE_EPS / 2, **base), 2.0)
        assert not rule.violated(ctx(iob_rate=IOB_RATE_EPS * 2, **base), 2.0)

    def test_nonpos_nonneg_bands(self):
        rule11, rule12 = RULES[11], RULES[12]
        c = ctx(bg=150.0, bg_rate=1.0, iob=1.0, iob_rate=0.0,
                action=ControlAction.KEEP)
        assert rule11.violated(c, 2.0)  # IOB'<=0 includes 0
        c = ctx(bg=90.0, bg_rate=-1.0, iob=3.0, iob_rate=0.0,
                action=ControlAction.KEEP)
        assert rule12.violated(c, 2.0)  # IOB'>=0 includes 0


class TestSTLEquivalence:
    """The fast pointwise path must agree with the STL semantics."""

    @pytest.mark.parametrize("index", sorted(RULES))
    def test_violation_matches_stl(self, index):
        rule = RULES[index]
        rng = np.random.default_rng(index)
        n = 40
        actions = rng.integers(1, 5, size=n)
        channels = {
            "BG": rng.uniform(60, 200, size=n),
            "BG'": rng.uniform(-2, 2, size=n),
            "IOB": rng.uniform(-1, 5, size=n),
            "IOB'": rng.uniform(-0.05, 0.05, size=n),
        }
        for act in ControlAction:
            channels[act.channel] = (actions == int(act)).astype(float)
        trace = Trace(channels, dt=5.0)
        threshold = 2.0 if rule.mu_channel == "IOB" else 80.0
        env = {rule.param: threshold}
        body = rule.ucas_entry().to_stl().child  # the implication, pointwise
        stl_ok = satisfaction(body, trace, env=env)
        for t in range(n):
            c = ContextVector(t=t * 5.0, bg=channels["BG"][t],
                              bg_rate=channels["BG'"][t],
                              iob=channels["IOB"][t],
                              iob_rate=channels["IOB'"][t], rate=1.0,
                              bolus=0.0, action=ControlAction(actions[t]))
            assert rule.violated(c, threshold) == (not stl_ok[t]), (
                f"rule {index} mismatch at sample {t}")


class TestSCS:
    def test_scs_has_12_entries(self):
        scs = aps_scs()
        assert len(scs.ucas) == 12

    def test_scs_parameters(self):
        params = aps_scs().parameters()
        assert len(params) == 12
        assert "beta1" in params and "beta21" in params

    def test_entries_for_hazard(self):
        scs = aps_scs()
        assert len(scs.entries_for_hazard(HazardType.H2)) == 7
        assert len(scs.entries_for_hazard(HazardType.H1)) == 5

    def test_entries_for_action(self):
        scs = aps_scs()
        assert len(scs.entries_for_action(ControlAction.DECREASE)) == 5

    def test_monitor_formulas_are_globally(self):
        from repro.stl import Globally
        formulas = aps_scs().monitor_formulas()
        assert len(formulas) == 12
        assert all(isinstance(f, Globally) for f in formulas.values())

    def test_custom_bg_target_propagates(self):
        scs = aps_scs(bg_target=140.0)
        text = str(scs.ucas[0].context)
        assert "140" in text
