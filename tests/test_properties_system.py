"""Cross-cutting property-based tests on system-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controllers import ControlAction, InsulinActivityCurve, classify_action
from repro.fi import FaultKind, FaultSpec, FaultTarget, VARIABLE_RANGES
from repro.hazards import label_hazards, risk
from repro.patients import InsulinPump, glucosym_patient


class TestPumpProperties:
    @given(st.floats(min_value=-5, max_value=50, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_pump_output_always_valid(self, rate):
        pump = InsulinPump(max_basal=10.0, increment=0.05)
        actual = pump.command_basal(rate)
        assert 0.0 <= actual <= 10.0
        # quantized to the increment grid
        steps = actual / 0.05
        assert abs(steps - round(steps)) < 1e-6

    @given(st.floats(min_value=0, max_value=10, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_quantization_never_rounds_up(self, rate):
        pump = InsulinPump(increment=0.05)
        assert pump.quantize(rate) <= rate + 1e-9


class TestIOBProperties:
    @given(st.floats(min_value=1, max_value=299, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_iob_fraction_bounded(self, minutes):
        curve = InsulinActivityCurve(dia=300, peak=75)
        assert 0.0 <= curve.iob_fraction(minutes) <= 1.0
        assert curve.activity(minutes) >= 0.0


class TestFaultProperties:
    @given(st.sampled_from(list(FaultKind)),
           st.sampled_from(list(FaultTarget)),
           st.floats(min_value=0, max_value=500, allow_nan=False),
           st.floats(min_value=0, max_value=500, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_corrupted_value_within_acceptable_range(self, kind, target,
                                                     value, held):
        spec = FaultSpec(kind=kind, target=target, start_step=0,
                         duration_steps=1,
                         value=0.5 if kind is FaultKind.SCALE else 10.0)
        lo, hi = VARIABLE_RANGES[target]
        clamped_value = min(max(value, lo), hi)
        result = spec.apply(clamped_value, min(max(held, lo), hi))
        assert lo <= result <= hi


class TestRiskProperties:
    @given(st.lists(st.floats(min_value=20, max_value=600, allow_nan=False),
                    min_size=13, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_labeling_types_consistent(self, bg):
        label = label_hazards(np.asarray(bg))
        assert ((label.hazard_type > 0) == label.hazardous).all()
        if label.any_hazard:
            assert label.hazardous[label.first_hazard]
            assert not label.hazardous[:label.first_hazard].any()

    @given(st.floats(min_value=20, max_value=110, allow_nan=False),
           st.floats(min_value=0.1, max_value=50, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_hypo_risk_monotone(self, bg, delta):
        """Lower glucose on the hypo branch is always riskier."""
        lower = max(bg - delta, 15.0)
        assert risk(lower) >= risk(bg) - 1e-9


class TestActionProperties:
    @given(st.floats(min_value=0, max_value=10, allow_nan=False),
           st.floats(min_value=0, max_value=5, allow_nan=False),
           st.floats(min_value=0.1, max_value=3, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_classification_total_and_consistent(self, rate, bolus, reference):
        action = classify_action(rate, bolus, reference)
        assert action in ControlAction
        if bolus > 0:
            assert action == ControlAction.INCREASE
        elif rate <= 0.01:
            assert action == ControlAction.STOP


class TestPatientEnergyBalance:
    @given(st.floats(min_value=80, max_value=200, allow_nan=False))
    @settings(max_examples=10, deadline=None)
    def test_quasi_steady_init_holds_briefly(self, init_bg):
        """The initial state is near-stationary under its holding basal."""
        patient = glucosym_patient("B")
        patient.reset(init_bg)
        holding = patient.basal_rate(init_bg)
        bg = patient.step(holding)
        assert abs(bg - init_bg) < 2.0
