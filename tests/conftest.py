"""Shared test-fixture layer.

Several test modules need "a small but real fault-injection campaign".
Before this layer each of them simulated its own — the same 56 traces,
several times per run.  The fixtures here simulate that campaign (and the
matching fault-free references) exactly once per session and hand the same
list to every module, cutting tier-1 wall-clock without any test giving up
real closed-loop data.

Test code must treat the shared traces as immutable: SimulationTrace is a
frozen dataclass, so this is only a concern for tests that would mutate
the returned *list* — copy it first (``list(tiny_campaign_traces)``).
"""

import dataclasses

import numpy as np
import pytest

from repro.simulation import run_campaign, run_fault_free

# grid constants live in tests/tiny_grid.py (a uniquely-named module —
# `conftest` is ambiguous once subdirectories carry their own); re-exported
# here so fixture users keep one import point
from tiny_grid import (TINY_CAMPAIGN_CONFIG, TINY_PATIENT,  # noqa: F401
                       TINY_PLATFORM, tiny_campaign_scenarios)


@pytest.fixture(scope="session")
def tiny_campaign_traces():
    """56-trace patient-B campaign shared across test modules."""
    return run_campaign(TINY_PLATFORM, [TINY_PATIENT],
                        tiny_campaign_scenarios())


@pytest.fixture(scope="session")
def tiny_fault_free_traces():
    """One 60-step fault-free reference run for the shared patient."""
    return run_fault_free(TINY_PLATFORM, [TINY_PATIENT], (120.0,), n_steps=60)


def _assert_traces_equal(a, b):
    """Element-wise equality of two SimulationTraces (every field)."""
    assert a.platform == b.platform
    assert a.patient_id == b.patient_id
    assert a.label == b.label
    assert a.dt == b.dt
    assert a.fault == b.fault
    for f in dataclasses.fields(a):
        v1, v2 = getattr(a, f.name), getattr(b, f.name)
        if isinstance(v1, np.ndarray):
            assert np.array_equal(v1, v2), f"field {f.name} differs"


@pytest.fixture(scope="session")
def assert_traces_equal():
    """The canonical trace-equality assertion used by every parity suite."""
    return _assert_traces_equal
