"""Shared test-fixture layer.

Several test modules need "a small but real fault-injection campaign".
Before this layer each of them simulated its own — the same 56 traces,
several times per run.  The fixtures here simulate that campaign (and the
matching fault-free references) exactly once per session and hand the same
list to every module, cutting tier-1 wall-clock without any test giving up
real closed-loop data.

Test code must treat the shared traces as immutable: SimulationTrace is a
frozen dataclass, so this is only a concern for tests that would mutate
the returned *list* — copy it first (``list(tiny_campaign_traces)``).
"""

import dataclasses

import numpy as np
import pytest

from repro.fi import CampaignConfig, generate_campaign
from repro.simulation import run_campaign, run_fault_free

#: the shared small campaign grid: 14 fault configs x 2 timings x 2 initial
#: BGs = 56 scenarios against Glucosym patient B (hazardous and safe mix)
TINY_CAMPAIGN_CONFIG = CampaignConfig(init_glucose_values=(120.0, 200.0),
                                      timing_choices=((0, 24), (40, 30)))

TINY_PLATFORM = "glucosym"
TINY_PATIENT = "B"


def tiny_campaign_scenarios():
    """The scenario list behind :func:`tiny_campaign_traces` (plain helper
    so tests can rebuild the matching CampaignPlan)."""
    return generate_campaign(TINY_CAMPAIGN_CONFIG)


@pytest.fixture(scope="session")
def tiny_campaign_traces():
    """56-trace patient-B campaign shared across test modules."""
    return run_campaign(TINY_PLATFORM, [TINY_PATIENT],
                        tiny_campaign_scenarios())


@pytest.fixture(scope="session")
def tiny_fault_free_traces():
    """One 60-step fault-free reference run for the shared patient."""
    return run_fault_free(TINY_PLATFORM, [TINY_PATIENT], (120.0,), n_steps=60)


def _assert_traces_equal(a, b):
    """Element-wise equality of two SimulationTraces (every field)."""
    assert a.platform == b.platform
    assert a.patient_id == b.patient_id
    assert a.label == b.label
    assert a.dt == b.dt
    assert a.fault == b.fault
    for f in dataclasses.fields(a):
        v1, v2 = getattr(a, f.name), getattr(b, f.name)
        if isinstance(v1, np.ndarray):
            assert np.array_equal(v1, v2), f"field {f.name} differs"


@pytest.fixture(scope="session")
def assert_traces_equal():
    """The canonical trace-equality assertion used by every parity suite."""
    return _assert_traces_equal
