"""Tests for the Dalla Man S2013 (UVA-Padova-substitute) patient model."""

import numpy as np
import pytest

from repro.patients import Meal, T1DParams, T1DS2013_COHORT, t1d_patient
from repro.patients.t1d import solve_kp1, _solve_basal_state


class TestCohort:
    def test_cohort_has_ten_patients(self):
        assert len(T1DS2013_COHORT) == 10
        assert all(pid.startswith("P") for pid in T1DS2013_COHORT)

    def test_cohort_is_steady_state_consistent(self):
        """Every cohort member has a well-posed positive basal."""
        for pid, params in T1DS2013_COHORT.items():
            _, ib, iirb = _solve_basal_state(params, params.Gb)
            assert ib > 0, pid
            assert iirb > 0, pid

    def test_basal_insulin_physiologic(self):
        for pid, params in T1DS2013_COHORT.items():
            _, ib, _ = _solve_basal_state(params, params.Gb)
            assert 30 <= ib <= 120, f"{pid}: basal insulin {ib} pmol/L"

    def test_basal_rates_physiologic(self):
        for pid in T1DS2013_COHORT:
            basal = t1d_patient(pid).basal_rate()
            assert 0.4 <= basal <= 3.0, f"{pid}: basal {basal} U/h"

    def test_solve_kp1_round_trip(self):
        params = T1DS2013_COHORT["P01"]
        _, ib, _ = _solve_basal_state(params, params.Gb)
        assert solve_kp1(params, ib) == pytest.approx(params.kp1)

    def test_unknown_patient(self):
        with pytest.raises(KeyError, match="unknown"):
            t1d_patient("P99")


class TestSteadyState:
    def test_basal_holds_glucose(self):
        patient = t1d_patient("P01")
        basal = patient.basal_rate()
        for _ in range(72):  # 6 hours
            glucose = patient.step(basal)
        assert glucose == pytest.approx(120.0, abs=1.0)

    def test_sensor_tracks_blood_glucose_at_rest(self):
        patient = t1d_patient("P02")
        basal = patient.basal_rate()
        for _ in range(24):
            patient.step(basal)
        assert patient.sensor_glucose == pytest.approx(patient.glucose, abs=1.0)

    def test_unsustainable_target_rejected(self):
        patient = t1d_patient("P01")
        with pytest.raises(ValueError, match="sustain"):
            patient.basal_rate(400.0)  # EGP cannot push BG this high


class TestDynamics:
    def test_insulin_suspension_raises_glucose(self):
        patient = t1d_patient("P01")
        for _ in range(150):  # 12.5 hours
            glucose = patient.step(0.0)
        assert glucose > 200

    def test_overdose_causes_hypoglycemia(self):
        patient = t1d_patient("P01")
        basal = patient.basal_rate()
        for _ in range(150):
            glucose = patient.step(5.0 * basal)
        assert glucose < 60

    def test_sensor_lags_blood_glucose(self):
        """Interstitial glucose lags plasma during a rapid fall."""
        patient = t1d_patient("P01")
        basal = patient.basal_rate()
        patient.step(basal, bolus_u=3.0)
        lagged = 0
        for _ in range(24):
            patient.step(basal)
            if patient.sensor_glucose > patient.glucose:
                lagged += 1
        assert lagged > 12, "sensor should sit above plasma during a fall"

    def test_meal_raises_glucose(self):
        patient = t1d_patient("P01")
        basal = patient.basal_rate()
        patient.add_meal(Meal(time=10.0, carbs=50.0))
        peak = max(patient.step(basal) for _ in range(48))
        assert peak > 160

    def test_remote_insulin_action_can_go_negative(self):
        patient = t1d_patient("P01")
        for _ in range(36):
            patient.step(0.0)
        assert patient.state[6] < 0  # X below basal

    def test_glucose_floor(self):
        patient = t1d_patient("P03")
        for _ in range(300):
            glucose = patient.step(8.0)
        assert glucose >= 10.0

    def test_risk_amplification_active_below_basal_glucose(self):
        patient = t1d_patient("P01")
        assert patient._risk(120.0) == 0.0
        assert patient._risk(80.0) > 0.0
        # saturates below Gth
        assert patient._risk(40.0) == pytest.approx(patient._risk(60.0))

    def test_risk_monotone_decreasing_in_glucose(self):
        patient = t1d_patient("P01")
        risks = [patient._risk(g) for g in (60, 80, 100, 119)]
        assert risks == sorted(risks, reverse=True)


class TestGastricEmptying:
    def test_no_meal_uses_kmax(self):
        patient = t1d_patient("P01")
        assert patient._gastric_emptying(0.0) == patient.params.kmax

    def test_emptying_rate_bounded(self):
        patient = t1d_patient("P01")
        patient._ingest(60.0)
        p = patient.params
        for qsto in np.linspace(0, 60000, 25):
            k = patient._gastric_emptying(qsto)
            assert p.kmin - 1e-12 <= k <= p.kmax + 1e-12

    def test_meal_mass_enters_stomach(self):
        patient = t1d_patient("P01")
        patient._ingest(60.0)
        assert patient.state[10] == pytest.approx(60000.0)  # mg


class TestInterface:
    def test_reset_sets_glucose_and_time(self):
        patient = t1d_patient("P05")
        patient.step(1.0)
        patient.reset(160.0)
        assert patient.t == 0.0
        assert patient.glucose == pytest.approx(160.0)
        assert patient.sensor_glucose == pytest.approx(160.0)

    def test_invalid_reset(self):
        with pytest.raises(ValueError):
            t1d_patient("P05").reset(0.0)

    def test_determinism(self):
        p1, p2 = t1d_patient("P04"), t1d_patient("P04")
        for _ in range(20):
            g1 = p1.step(1.0)
            g2 = p2.step(1.0)
        assert g1 == g2

    def test_nonpositive_parameter_rejected(self):
        with pytest.raises(ValueError):
            T1DParams(VG=-1.0)

    def test_plasma_insulin_positive_at_rest(self):
        patient = t1d_patient("P01")
        assert patient.plasma_insulin > 0
