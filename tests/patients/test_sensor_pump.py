"""Tests for the CGM sensor and insulin pump actuator models."""

import numpy as np
import pytest

from repro.patients import CGMSensor, InsulinPump


class TestCGMSensor:
    def test_ideal_sensor_passthrough(self):
        sensor = CGMSensor()
        assert sensor.is_ideal
        assert sensor.measure(123.4) == pytest.approx(123.4)

    def test_noise_is_deterministic_given_seed(self):
        s1 = CGMSensor(noise_std=5.0, seed=7)
        s2 = CGMSensor(noise_std=5.0, seed=7)
        r1 = [s1.measure(120.0) for _ in range(10)]
        r2 = [s2.measure(120.0) for _ in range(10)]
        np.testing.assert_allclose(r1, r2)

    def test_noise_changes_reading(self):
        sensor = CGMSensor(noise_std=5.0, seed=1)
        readings = [sensor.measure(120.0) for _ in range(20)]
        assert np.std(readings) > 0.5

    def test_ar_correlation(self):
        """AR(1) noise with high coefficient is positively autocorrelated."""
        sensor = CGMSensor(noise_std=5.0, ar_coeff=0.95, seed=3)
        errors = np.array([sensor.measure(120.0) - 120.0 for _ in range(800)])
        corr = np.corrcoef(errors[:-1], errors[1:])[0, 1]
        assert corr > 0.6

    def test_calibration_error(self):
        sensor = CGMSensor(gain=1.1, offset=-5.0)
        assert sensor.measure(100.0) == pytest.approx(105.0)
        assert not sensor.is_ideal

    def test_clipping_at_cgm_range(self):
        sensor = CGMSensor()
        assert sensor.measure(500.0) == 400.0
        assert sensor.measure(5.0) == 40.0

    def test_clip_disabled(self):
        sensor = CGMSensor(clip=False)
        assert sensor.measure(500.0) == 500.0

    def test_reset_restarts_noise(self):
        sensor = CGMSensor(noise_std=5.0, seed=11)
        first = [sensor.measure(120.0) for _ in range(5)]
        sensor.reset(seed=11)
        second = [sensor.measure(120.0) for _ in range(5)]
        np.testing.assert_allclose(first, second)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CGMSensor(noise_std=-1)
        with pytest.raises(ValueError):
            CGMSensor(ar_coeff=1.0)
        with pytest.raises(ValueError):
            CGMSensor(gain=0.0)
        with pytest.raises(ValueError):
            CGMSensor().measure(-1.0)


class TestInsulinPump:
    def test_quantization(self):
        pump = InsulinPump(increment=0.05)
        assert pump.command_basal(1.23) == pytest.approx(1.20)
        assert pump.command_basal(0.04) == 0.0

    def test_quantize_exact_grid(self):
        pump = InsulinPump(increment=0.05)
        assert pump.quantize(1.05) == pytest.approx(1.05)

    def test_clamping_to_max(self):
        pump = InsulinPump(max_basal=3.0)
        assert pump.command_basal(99.0) == 3.0

    def test_negative_command_clamped_to_zero(self):
        pump = InsulinPump()
        assert pump.command_basal(-2.0) == 0.0

    def test_bolus_clamped(self):
        pump = InsulinPump(max_bolus=5.0)
        assert pump.command_bolus(7.0) == 5.0
        assert pump.command_bolus(-1.0) == 0.0

    def test_suspend_blocks_delivery(self):
        pump = InsulinPump()
        pump.suspend()
        assert pump.command_basal(2.0) == 0.0
        assert pump.command_bolus(1.0) == 0.0
        pump.resume()
        assert pump.command_basal(2.0) == 2.0

    def test_delivery_accounting(self):
        pump = InsulinPump()
        pump.record_delivery(basal_u_h=2.0, bolus_u=1.0, duration_min=30.0)
        assert pump.total_delivered == pytest.approx(2.0)

    def test_reset(self):
        pump = InsulinPump()
        pump.suspend()
        pump.record_delivery(1.0, 0.0, 60.0)
        pump.reset()
        assert not pump.suspended
        assert pump.total_delivered == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            InsulinPump(max_basal=0)
        with pytest.raises(ValueError):
            InsulinPump(increment=0)

    def test_invalid_delivery_duration(self):
        with pytest.raises(ValueError):
            InsulinPump().record_delivery(1.0, 0.0, -5.0)
