"""Tests for the patient cohort registry."""

import pytest

from repro.patients import COHORTS, all_patients, make_patient, patient_ids


class TestRegistry:
    def test_two_cohorts(self):
        assert set(COHORTS) == {"glucosym", "t1ds2013"}

    def test_twenty_patients_total(self):
        """The paper evaluates 20 patient profiles (Section V-A)."""
        assert sum(len(ids) for ids in COHORTS.values()) == 20

    def test_patient_ids_copies(self):
        ids = patient_ids("glucosym")
        ids.append("fake")
        assert "fake" not in COHORTS["glucosym"]

    def test_unknown_cohort(self):
        with pytest.raises(KeyError, match="unknown cohort"):
            patient_ids("nope")
        with pytest.raises(KeyError, match="unknown cohort"):
            make_patient("nope", "A")

    def test_make_patient_dispatch(self):
        assert make_patient("glucosym", "A").name == "glucosym/A"
        assert make_patient("t1ds2013", "P01").name == "t1ds2013/P01"

    def test_all_patients(self):
        patients = all_patients("glucosym")
        assert len(patients) == 10
        assert all(p.glucose == pytest.approx(120.0) for p in patients)

    def test_target_glucose_forwarded(self):
        patient = make_patient("glucosym", "A", target_glucose=140.0)
        assert patient.glucose == pytest.approx(140.0)
