"""Tests for the IVP (Glucosym-substitute) patient model."""

import numpy as np
import pytest

from repro.patients import GLUCOSYM_COHORT, IVPParams, Meal, glucosym_patient


class TestParams:
    def test_cohort_has_ten_patients(self):
        assert len(GLUCOSYM_COHORT) == 10
        assert set(GLUCOSYM_COHORT) == set("ABCDEFGHIJ")

    def test_cohort_parameters_in_published_ranges(self):
        for params in GLUCOSYM_COHORT.values():
            assert 2e-4 <= params.SI <= 2e-3
            assert 5e-4 <= params.GEZI <= 5e-3
            assert 0.5 <= params.EGP <= 2.5
            assert 1000 <= params.CI <= 3500
            assert 30 <= params.tau1 <= 80
            assert 30 <= params.tau2 <= 80
            assert 0.003 <= params.p2 <= 0.03
            assert 40 <= params.BW <= 120

    def test_cohort_parameters_distinct(self):
        values = {p.SI for p in GLUCOSYM_COHORT.values()}
        assert len(values) == 10, "patients must be genuinely different"

    def test_nonpositive_param_rejected(self):
        with pytest.raises(ValueError):
            IVPParams(SI=0, GEZI=1e-3, EGP=1.0, CI=2000, tau1=50, tau2=50,
                      p2=0.01, BW=70)

    def test_open_loop_glucose(self):
        p = GLUCOSYM_COHORT["B"]
        assert p.open_loop_glucose == pytest.approx(p.EGP / p.GEZI)


class TestSteadyState:
    def test_basal_rate_physiologic(self):
        for pid in GLUCOSYM_COHORT:
            basal = glucosym_patient(pid).basal_rate()
            assert 0.3 <= basal <= 4.0, f"patient {pid} basal {basal} U/h"

    def test_basal_holds_glucose(self):
        patient = glucosym_patient("B")
        basal = patient.basal_rate()
        for _ in range(36):  # 3 hours
            glucose = patient.step(basal)
        assert glucose == pytest.approx(120.0, abs=0.5)

    def test_basal_rate_decreases_with_target(self):
        patient = glucosym_patient("B")
        assert patient.basal_rate(100.0) > patient.basal_rate(160.0)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            glucosym_patient("B").basal_rate(0.0)


class TestDynamics:
    def test_no_insulin_raises_glucose(self):
        patient = glucosym_patient("B")
        start = patient.glucose
        for _ in range(36):
            glucose = patient.step(0.0)
        assert glucose > start + 10

    def test_overdose_lowers_glucose(self):
        patient = glucosym_patient("B")
        basal = patient.basal_rate()
        for _ in range(36):
            glucose = patient.step(5.0 * basal)
        assert glucose < 100

    def test_glucose_rise_bounded_by_open_loop(self):
        patient = glucosym_patient("B")
        limit = patient.params.open_loop_glucose
        for _ in range(400):
            glucose = patient.step(0.0)
        assert glucose <= limit + 1.0

    def test_meal_raises_glucose(self):
        patient = glucosym_patient("B")
        basal = patient.basal_rate()
        patient.add_meal(Meal(time=10.0, carbs=40.0))
        peak = max(patient.step(basal) for _ in range(36))
        assert peak > 180

    def test_meal_conservation_scale(self):
        """Total meal glucose appearance matches carbs/Vg."""
        patient = glucosym_patient("B")
        patient._ingest(50.0)  # 50 g
        total = sum(patient.meal_appearance(t) for t in np.arange(0, 600, 0.5)) * 0.5
        expected = 50.0 * 1000.0 / patient.params.glucose_volume_dl
        assert total == pytest.approx(expected, rel=0.01)

    def test_glucose_floor_holds(self):
        patient = glucosym_patient("J")
        for _ in range(300):
            glucose = patient.step(10.0)  # massive overdose
        assert glucose >= 10.0

    def test_insulin_states_nonnegative(self):
        patient = glucosym_patient("A")
        for _ in range(50):
            patient.step(0.0)
        assert (patient.state >= 0).all()


class TestStepInterface:
    def test_negative_basal_rejected(self):
        with pytest.raises(ValueError):
            glucosym_patient("A").step(-1.0)

    def test_negative_bolus_rejected(self):
        with pytest.raises(ValueError):
            glucosym_patient("A").step(1.0, bolus_u=-0.5)

    def test_bolus_lowers_glucose_more(self):
        p1 = glucosym_patient("B")
        p2 = glucosym_patient("B")
        basal = p1.basal_rate()
        for _ in range(24):
            g1 = p1.step(basal)
            g2 = p2.step(basal, bolus_u=0.0)
        assert g1 == pytest.approx(g2)
        p3 = glucosym_patient("B")
        p3.step(basal, bolus_u=2.0)
        for _ in range(23):
            g3 = p3.step(basal)
        assert g3 < g1 - 5

    def test_time_advances(self):
        patient = glucosym_patient("A")
        patient.step(1.0)
        assert patient.t == pytest.approx(5.0)

    def test_reset_restores_time_and_glucose(self):
        patient = glucosym_patient("A")
        patient.step(0.0)
        patient.reset(150.0)
        assert patient.t == 0.0
        assert patient.glucose == pytest.approx(150.0)

    def test_reset_invalid_glucose(self):
        with pytest.raises(ValueError):
            glucosym_patient("A").reset(-5.0)

    def test_unknown_patient_id(self):
        with pytest.raises(KeyError, match="unknown"):
            glucosym_patient("Z")

    def test_patient_prefix_accepted(self):
        patient = glucosym_patient("patientA")
        assert patient.name.endswith("/A")

    def test_state_returns_copy(self):
        patient = glucosym_patient("A")
        state = patient.state
        state[:] = -1
        assert (patient.state >= 0).all()

    def test_determinism(self):
        p1, p2 = glucosym_patient("C"), glucosym_patient("C")
        for _ in range(20):
            g1 = p1.step(1.0)
            g2 = p2.step(1.0)
        assert g1 == g2
