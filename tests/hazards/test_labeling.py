"""Tests for hazard labeling (Section IV-C2)."""

import numpy as np
import pytest

from repro.hazards import HazardType, label_hazards


def ramp(start, stop, n):
    return np.linspace(start, stop, n)


class TestLabeling:
    def test_euglycemic_trace_is_safe(self):
        label = label_hazards(np.full(150, 120.0))
        assert not label.any_hazard
        assert label.first_hazard is None
        assert label.first_type is None
        assert not label.hazardous.any()

    def test_hypo_ramp_labels_h1(self):
        bg = np.concatenate([np.full(30, 120.0), ramp(120, 35, 60),
                             np.full(60, 35.0)])
        label = label_hazards(bg)
        assert label.any_hazard
        assert label.first_type == HazardType.H1

    def test_hyper_ramp_labels_h2(self):
        bg = np.concatenate([np.full(30, 140.0), ramp(140, 380, 60),
                             np.full(60, 380.0)])
        label = label_hazards(bg)
        assert label.any_hazard
        assert label.first_type == HazardType.H2

    def test_hazard_starts_after_crossing(self):
        """The hazard is flagged only once the windowed index crosses."""
        bg = np.concatenate([np.full(30, 120.0), ramp(120, 35, 60),
                             np.full(60, 35.0)])
        label = label_hazards(bg)
        assert label.first_hazard > 30

    def test_mild_excursion_not_hazardous(self):
        bg = np.concatenate([np.full(50, 120.0), ramp(120, 190, 50),
                             ramp(190, 120, 50)])
        label = label_hazards(bg)
        assert not label.any_hazard

    def test_hazard_time_in_minutes(self):
        bg = np.concatenate([np.full(30, 120.0), ramp(120, 35, 60),
                             np.full(60, 35.0)])
        label = label_hazards(bg)
        assert label.hazard_time(dt=5.0) == label.first_hazard * 5.0

    def test_hazard_time_none_when_safe(self):
        label = label_hazards(np.full(50, 120.0))
        assert label.hazard_time() is None

    def test_recovering_index_unflags(self):
        """Once the index decreases, 'kept increasing' no longer holds."""
        bg = np.concatenate([ramp(120, 35, 40), ramp(35, 120, 40),
                             np.full(40, 120.0)])
        label = label_hazards(bg)
        # late euglycemic samples are not hazardous
        assert not label.hazardous[-10:].any()

    def test_types_vector_consistent_with_mask(self):
        bg = np.concatenate([np.full(30, 120.0), ramp(120, 35, 60),
                             np.full(60, 35.0)])
        label = label_hazards(bg)
        assert ((label.hazard_type > 0) == label.hazardous).all()

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            label_hazards(np.zeros((3, 3)) + 120.0)

    def test_custom_thresholds(self):
        bg = np.concatenate([np.full(30, 120.0), ramp(120, 80, 60),
                             np.full(60, 80.0)])
        strict = label_hazards(bg, lbgi_threshold=0.5)
        default = label_hazards(bg)
        assert strict.any_hazard
        assert not default.any_hazard

    def test_both_branches_severe_swing(self):
        """A swing through both extremes labels both hazard types."""
        bg = np.concatenate([ramp(120, 35, 50), ramp(35, 380, 80),
                             np.full(30, 380.0)])
        label = label_hazards(bg)
        types = set(label.hazard_type[label.hazardous])
        assert {int(HazardType.H1), int(HazardType.H2)} <= types
