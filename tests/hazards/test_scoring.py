"""Tests for the continuous hazard-proximity objective (hazards.scoring)."""

import numpy as np
import pytest

from repro.hazards import (HAZARD_BONUS, HBGI_THRESHOLD, LBGI_THRESHOLD,
                           excursion_margin, rolling_indices, score_trace)


class TestExcursionMargin:
    def test_euglycemic_trace_is_negative(self):
        bg = np.full(60, 120.0)
        margin = excursion_margin(bg)
        assert margin < 0.0
        # euglycemia has zero risk mass, so the margin is exactly the
        # smaller threshold distance
        assert margin == pytest.approx(-LBGI_THRESHOLD)

    def test_hypoglycemic_trace_is_positive(self):
        bg = np.full(60, 40.0)
        assert excursion_margin(bg) > 0.0

    def test_margin_matches_rolling_indices(self):
        rng = np.random.default_rng(0)
        bg = rng.uniform(40.0, 400.0, size=90)
        lbgi_s, hbgi_s = rolling_indices(bg, 12)
        expected = max(lbgi_s.max() - LBGI_THRESHOLD,
                       hbgi_s.max() - HBGI_THRESHOLD)
        assert excursion_margin(bg, 12) == pytest.approx(expected)

    def test_monotone_under_deepening_hypo(self):
        # pushing the nadir lower can only increase the margin
        margins = [excursion_margin(np.full(60, nadir))
                   for nadir in (110.0, 90.0, 70.0, 50.0)]
        assert margins == sorted(margins)


class TestScoreTrace:
    def test_campaign_traces_score_consistently(self, tiny_campaign_traces):
        hazard_scores, safe_scores = [], []
        for trace in tiny_campaign_traces:
            s = score_trace(trace)
            assert s.hazardous == trace.hazardous
            if s.hazardous:
                assert s.margin > 0.0
                assert s.score == pytest.approx(
                    s.margin + HAZARD_BONUS
                    + 1.0 / (1.0 + s.time_to_hazard / 60.0))
                assert s.first_hazard == trace.hazard_label.first_hazard
                assert s.time_to_hazard >= 0.0
                assert s.hazard_type != 0
                # the bonus lifts every hazard above its own margin, so at
                # equal excursion depth hazards outrank near-misses
                assert s.score > s.margin + HAZARD_BONUS
                hazard_scores.append(s.score)
            else:
                assert s.score == s.margin
                assert s.first_hazard is None and s.time_to_hazard is None
                assert s.hazard_type == 0
                safe_scores.append(s.score)
        assert hazard_scores and safe_scores
        assert max(hazard_scores) > max(safe_scores)

    def test_uses_cached_label_for_default_window(self, tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        s = score_trace(trace)
        label = trace.hazard_label
        expected = float(np.maximum(label.lbgi - LBGI_THRESHOLD,
                                    label.hbgi - HBGI_THRESHOLD).max())
        assert s.margin == pytest.approx(expected)

    def test_custom_window_changes_margin(self, tiny_campaign_traces):
        trace = next(t for t in tiny_campaign_traces if t.hazardous)
        default = score_trace(trace)
        short = score_trace(trace, window=3)
        assert short.margin != default.margin

    def test_tth_anchored_at_fault_activation(self, tiny_campaign_traces):
        trace = next(t for t in tiny_campaign_traces
                     if t.hazardous and t.fault is not None
                     and t.hazard_label.first_hazard
                     >= t.fault.start_step)
        s = score_trace(trace)
        expected = (trace.hazard_label.first_hazard
                    - trace.fault.start_step) * trace.dt
        assert s.time_to_hazard == pytest.approx(expected)

    def test_deterministic(self, tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        assert score_trace(trace) == score_trace(trace)
