"""Tests for the Kovatchev BG risk index (Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hazards import hbgi, lbgi, risk, rolling_indices, signed_risk
from repro.hazards.risk import RISK_ZERO_BG


class TestRiskFunction:
    def test_zero_at_crossover(self):
        assert risk(RISK_ZERO_BG) == pytest.approx(0.0, abs=1e-9)

    def test_crossover_near_112(self):
        """The Kovatchev risk zero is ~112.5 mg/dL."""
        assert 110 < RISK_ZERO_BG < 115

    def test_eq5_value_at_50(self):
        # direct evaluation of Eq. 5
        expected = 10 * (1.509 * (np.log(50.0) ** 1.084 - 5.381)) ** 2
        assert risk(50.0) == pytest.approx(expected)

    def test_hypo_is_negative_signed(self):
        assert signed_risk(60.0) < 0

    def test_hyper_is_positive_signed(self):
        assert signed_risk(300.0) > 0

    def test_severe_hypo_riskier_than_mild(self):
        assert risk(40.0) > risk(70.0) > risk(100.0)

    def test_severe_hyper_riskier_than_mild(self):
        assert risk(400.0) > risk(250.0) > risk(160.0)

    def test_array_input(self):
        values = risk(np.array([60.0, 112.5, 300.0]))
        assert values.shape == (3,)

    def test_scalar_returns_float(self):
        assert isinstance(risk(100.0), float)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            risk(0.0)
        with pytest.raises(ValueError):
            signed_risk(np.array([100.0, -5.0]))

    @given(st.floats(min_value=20, max_value=600))
    @settings(max_examples=100, deadline=None)
    def test_risk_nonnegative(self, bg):
        assert risk(bg) >= 0

    @given(st.floats(min_value=20, max_value=600))
    @settings(max_examples=100, deadline=None)
    def test_signed_magnitude_matches_risk(self, bg):
        assert abs(signed_risk(bg)) == pytest.approx(risk(bg), rel=1e-9)


class TestIndices:
    def test_lbgi_zero_for_hyper_window(self):
        assert lbgi([200.0, 250.0, 300.0]) == 0.0

    def test_hbgi_zero_for_hypo_window(self):
        assert hbgi([50.0, 60.0, 70.0]) == 0.0

    def test_lbgi_high_for_severe_hypo(self):
        assert lbgi([45.0] * 12) > 5.0

    def test_hbgi_high_for_severe_hyper(self):
        assert hbgi([350.0] * 12) > 9.0

    def test_mixed_window_contributes_both(self):
        window = [50.0] * 6 + [300.0] * 6
        assert lbgi(window) > 0
        assert hbgi(window) > 0

    def test_euglycemic_window_is_low_risk(self):
        window = np.linspace(90, 140, 12)
        assert lbgi(window) < 2.0
        assert hbgi(window) < 2.0


class TestRollingIndices:
    def test_output_lengths(self):
        bg = np.full(30, 120.0)
        low, high = rolling_indices(bg, window=12)
        assert len(low) == len(high) == 30

    def test_matches_direct_windows(self):
        rng = np.random.default_rng(0)
        bg = rng.uniform(50, 350, size=40)
        low, high = rolling_indices(bg, window=12)
        for t in range(40):
            start = max(t - 11, 0)
            assert low[t] == pytest.approx(lbgi(bg[start:t + 1]))
            assert high[t] == pytest.approx(hbgi(bg[start:t + 1]))

    def test_ramp_into_hypo_raises_lbgi(self):
        bg = np.linspace(120, 40, 36)
        low, _ = rolling_indices(bg, window=12)
        assert low[-1] > low[18] > low[0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_indices(np.full(5, 120.0), window=0)
