"""Property tests for the Kovatchev risk metrics (hazards.risk).

These pin the *shape* of the risk surface rather than point values (which
tests/hazards/test_risk.py already covers): non-negativity, the sign
split about the risk-zero glucose, monotonicity away from it on both
branches, and the LBGI/HBGI branch-exclusivity that makes the paper's
thresholds meaningful.  Randomised BG arrays use fixed seeds so failures
reproduce exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hazards import hbgi, lbgi, risk, signed_risk
from repro.hazards.risk import RISK_ZERO_BG

#: physiologically generous but positive glucose range (mg/dL)
BG_MIN, BG_MAX = 10.0, 600.0

bg_values = st.floats(min_value=BG_MIN, max_value=BG_MAX,
                      allow_nan=False, allow_infinity=False)


def _random_bg(seed, n=64, lo=BG_MIN, hi=BG_MAX):
    return np.random.default_rng(seed).uniform(lo, hi, size=n)


class TestRiskShape:
    @given(bg_values)
    @settings(max_examples=200, deadline=None)
    def test_risk_non_negative(self, bg):
        assert risk(bg) >= 0.0

    @given(bg_values)
    @settings(max_examples=200, deadline=None)
    def test_risk_is_magnitude_of_signed_risk(self, bg):
        assert risk(bg) == pytest.approx(abs(signed_risk(bg)))

    @given(bg_values)
    @settings(max_examples=200, deadline=None)
    def test_signed_risk_sign_matches_branch(self, bg):
        signed = signed_risk(bg)
        if bg < RISK_ZERO_BG:
            assert signed <= 0.0
        else:
            assert signed >= 0.0

    def test_risk_vanishes_at_zero_crossing(self):
        assert risk(RISK_ZERO_BG) == pytest.approx(0.0, abs=1e-9)
        assert signed_risk(RISK_ZERO_BG) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vectorised_matches_scalar(self, seed):
        bg = _random_bg(seed)
        assert np.allclose(risk(bg), [risk(float(b)) for b in bg])
        assert np.allclose(signed_risk(bg),
                           [signed_risk(float(b)) for b in bg])

    def test_rejects_non_positive_glucose(self):
        with pytest.raises(ValueError):
            risk(0.0)
        with pytest.raises(ValueError):
            signed_risk(np.array([120.0, -5.0]))


class TestMonotonicity:
    """Risk grows monotonically *away* from the zero crossing."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hypo_branch_decreasing_in_bg(self, seed):
        bg = np.sort(_random_bg(seed, lo=BG_MIN, hi=RISK_ZERO_BG - 1e-6))
        r = risk(bg)
        assert np.all(np.diff(r) <= 1e-12)  # lower BG => higher risk
        assert np.all(np.diff(signed_risk(bg)) >= -1e-12)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_hyper_branch_increasing_in_bg(self, seed):
        bg = np.sort(_random_bg(seed, lo=RISK_ZERO_BG + 1e-6, hi=BG_MAX))
        r = risk(bg)
        assert np.all(np.diff(r) >= -1e-12)  # higher BG => higher risk
        assert np.all(np.diff(signed_risk(bg)) >= -1e-12)

    def test_signed_risk_monotone_across_branches(self):
        bg = np.linspace(BG_MIN, BG_MAX, 512)
        assert np.all(np.diff(signed_risk(bg)) >= -1e-12)


class TestIndexBranches:
    """LBGI sees only the hypo branch, HBGI only the hyper branch."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_indices_non_negative(self, seed):
        bg = _random_bg(seed)
        assert lbgi(bg) >= 0.0
        assert hbgi(bg) >= 0.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hyper_samples_invisible_to_lbgi(self, seed):
        hypo = _random_bg(seed, n=24, lo=BG_MIN, hi=RISK_ZERO_BG - 1.0)
        hyper = _random_bg(seed + 100, n=24, lo=RISK_ZERO_BG + 1.0,
                           hi=BG_MAX)
        # appending hyper samples changes LBGI only through the window
        # length (they contribute zero risk mass to the low branch)
        combined = np.concatenate([hypo, hyper])
        assert lbgi(combined) * len(combined) == pytest.approx(
            lbgi(hypo) * len(hypo))
        assert hbgi(combined) * len(combined) == pytest.approx(
            hbgi(hyper) * len(hyper))

    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_in_range_window_scores_near_zero(self, seed):
        # samples pinned at the zero crossing carry no risk at all
        bg = np.full(32, RISK_ZERO_BG)
        assert lbgi(bg) == pytest.approx(0.0, abs=1e-9)
        assert hbgi(bg) == pytest.approx(0.0, abs=1e-9)
        # a tight euglycemic band stays far below both thresholds
        bg = _random_bg(seed, lo=90.0, hi=140.0)
        assert lbgi(bg) < 2.0
        assert hbgi(bg) < 2.0
