"""Smoke tests for every experiment module (tiny scale, shared cache)."""

import dataclasses
import math

import pytest

from repro.experiments import (
    ExperimentConfig,
    PRESETS,
    loss_curves,
    platform_data,
    run_adversarial_ablation,
    run_fault_free_generalisation,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
    run_multiclass_ablation,
    run_overhead,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig.preset("smoke")


class TestConfig:
    def test_presets_exist(self):
        assert set(PRESETS) == {"smoke", "ci", "small", "medium", "full"}

    def test_full_preset_matches_paper_scale(self):
        full = ExperimentConfig.preset("full")
        assert full.scenarios_per_patient == 882
        assert len(full.patients) == 10
        assert full.folds == 4

    def test_preset_for_t1d(self):
        cfg = ExperimentConfig.preset("smoke", platform="t1ds2013")
        assert cfg.platform == "t1ds2013"
        assert all(p.startswith("P") for p in cfg.patients)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            ExperimentConfig.preset("nope")

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ExperimentConfig(stride=0)


class TestData:
    def test_platform_data_cached(self, cfg):
        first = platform_data(cfg)
        second = platform_data(cfg)
        assert first is second

    def test_trace_partitions(self, cfg):
        data = platform_data(cfg)
        assert sum(len(v) for v in data.by_patient.values()) == len(data.traces)
        assert set(data.by_patient) == set(cfg.patients)

    def test_fault_free_has_seven_initials(self, cfg):
        data = platform_data(cfg)
        assert len(data.fault_free) == 7 * len(cfg.patients)


class TestDatasetStore:
    """The run-once / replay-many workflow behind ``dataset_dir``."""

    def test_store_backed_data_matches_in_memory(self, cfg, tmp_path,
                                                 assert_traces_equal):
        from repro.simulation import TraceDataset
        mem = platform_data(cfg)
        disk_cfg = dataclasses.replace(cfg, dataset_dir=str(tmp_path))
        disk = platform_data(disk_cfg)
        assert isinstance(disk.traces, TraceDataset)
        assert len(disk.traces) == len(mem.traces)
        for a, b in zip(mem.traces, disk.traces):
            assert_traces_equal(a, b)
        for a, b in zip(mem.fault_free, disk.fault_free):
            assert_traces_equal(a, b)
        root = tmp_path / disk_cfg.dataset_slug()
        assert (root / "campaign" / "manifest.json").exists()
        assert (root / "fault_free" / "manifest.json").exists()

    def test_replay_many_does_not_resimulate(self, cfg, tmp_path,
                                             monkeypatch):
        import repro.experiments.data as data_module
        disk_cfg = dataclasses.replace(cfg, dataset_dir=str(tmp_path))
        first = platform_data(disk_cfg)
        # a fresh invocation (cache dropped) must reopen, not resimulate
        data_module._DATA_CACHE.clear()

        def boom(*args, **kwargs):
            raise AssertionError("resimulated an already-stored campaign")

        monkeypatch.setattr(data_module, "run_campaign", boom)
        monkeypatch.setattr(data_module, "run_fault_free", boom)
        second = platform_data(disk_cfg)
        assert len(second.traces) == len(first.traces)

    def test_mismatched_directory_is_an_error(self, cfg, tmp_path):
        """A directory holding a *valid* store of some other campaign must
        be refused, not silently served or overwritten."""
        import json

        import repro.experiments.data as data_module
        from repro.simulation import CampaignStoreError, campaign_fingerprint
        disk_cfg = dataclasses.replace(cfg, dataset_dir=str(tmp_path))
        platform_data(disk_cfg)
        data_module._DATA_CACHE.clear()
        # rewrite one scenario label, keeping the manifest self-consistent:
        # the store is intact, it just describes a different campaign
        manifest = (tmp_path / disk_cfg.dataset_slug() / "campaign"
                    / "manifest.json")
        doc = json.loads(manifest.read_text())
        doc["traces"][0]["label"] = "not-the-campaign-you-want"
        cells = [(e["patient_id"], e["label"], e["dt"],
                  None if e["fault"] is None else
                  (e["fault"]["kind"], e["fault"]["target"],
                   e["fault"]["start_step"], e["fault"]["duration_steps"],
                   e["fault"]["value"]))
                 for e in doc["traces"]]
        doc["fingerprint"] = campaign_fingerprint(doc["platform"],
                                                  doc["n_steps"], cells)
        manifest.write_text(json.dumps(doc))
        with pytest.raises(CampaignStoreError, match="different campaign"):
            platform_data(disk_cfg)

    def test_dataset_slug_distinguishes_grids(self, cfg):
        other = dataclasses.replace(cfg, stride=cfg.stride + 1)
        assert cfg.dataset_slug() != other.dataset_slug()

    def test_train_test_split_stays_lazy_on_store(self, cfg, tmp_path,
                                                  assert_traces_equal):
        from repro.experiments.data import train_test_split
        from repro.simulation import TraceDatasetView
        disk_cfg = dataclasses.replace(cfg, dataset_dir=str(tmp_path))
        mem = platform_data(cfg)
        disk = platform_data(disk_cfg)
        train_mem, test_mem = train_test_split(mem)
        train_disk, test_disk = train_test_split(disk)
        assert isinstance(train_disk, TraceDatasetView)
        assert isinstance(test_disk, TraceDatasetView)
        assert len(train_disk) == len(train_mem)
        for a, b in zip(train_mem, train_disk):
            assert_traces_equal(a, b)
        for a, b in zip(test_mem, test_disk):
            assert_traces_equal(a, b)

    def test_folds_mismatch_is_an_error(self, cfg, tmp_path):
        import repro.experiments.data as data_module
        from repro.simulation import CampaignStoreError
        disk_cfg = dataclasses.replace(cfg, dataset_dir=str(tmp_path))
        platform_data(disk_cfg)
        data_module._DATA_CACHE.clear()
        stale = dataclasses.replace(disk_cfg, folds=disk_cfg.folds + 1)
        with pytest.raises(CampaignStoreError, match="folds"):
            platform_data(stale)

    def test_dataset_slug_distinguishes_patient_sets(self):
        a = ExperimentConfig(patients=("A", "B"))
        b = ExperimentConfig(patients=("C", "D"))
        assert a.dataset_slug() != b.dataset_slug()
        assert a.dataset_slug() == ExperimentConfig(
            patients=("A", "B")).dataset_slug()


class TestFig3:
    def test_rows_cover_all_losses(self):
        result = run_fig3()
        assert {row[0] for row in result.rows} == {"mse", "mae", "telex", "tmee"}

    def test_tmee_argmin_tight_positive(self):
        rows = run_fig3().row_dict()
        assert 0.2 < rows["tmee"][1] < 0.8
        assert rows["telex"][1] > rows["tmee"][1]
        assert abs(rows["mse"][1]) < 0.1

    def test_loss_curves_shapes(self):
        r, curves = loss_curves()
        assert len(curves) == 4
        assert all(len(v) == len(r) for v in curves.values())


class TestResilience:
    def test_fig7_rows(self, cfg):
        result = run_fig7(cfg)
        ids = [row[0] for row in result.rows]
        assert ids[-1] == "ALL"
        coverage = result.rows[-1][2]
        assert 0.0 <= coverage <= 1.0

    def test_fig8_coverage_bounds(self, cfg):
        result = run_fig8(cfg)
        for row in result.rows:
            for cell in row[1:]:
                if isinstance(cell, float) and cell == cell:
                    assert 0.0 <= cell <= 1.0

    def test_fig8_max_faults_most_damaging(self, cfg):
        """The paper's headline Fig. 8 observation."""
        rows = run_fig8(cfg).row_dict()
        max_cov = max(rows[k][-1] for k in rows if k.startswith("max_"))
        other = [rows[k][-1] for k in rows if not k.startswith("max_")]
        assert max_cov >= max(other)


class TestMonitorTables:
    def test_table5_monitors_present(self, cfg):
        rows = run_table5(cfg).row_dict()
        assert set(rows) == {"CAWT", "CAWOT", "Guideline", "MPC"}

    def test_table5_metrics_in_range(self, cfg):
        for row in run_table5(cfg).rows:
            _, n_sim, hazard_pct, fpr, fnr, acc, f1 = row
            assert 0 <= fpr <= 1 and 0 <= fnr <= 1
            assert 0 <= acc <= 1 and 0 <= f1 <= 1

    def test_table6_has_sample_and_sim_levels(self, cfg):
        result = run_table6(cfg)
        assert set(result.row_dict()) == {"CAWT", "DT", "MLP", "LSTM"}
        assert len(result.rows[0]) == 9

    def test_cawt_low_fpr(self, cfg):
        """The learned monitor's FPR must be small even at smoke scale."""
        rows = run_table6(cfg).row_dict()
        assert rows["CAWT"][1] < 0.05

    def test_fig9_reaction_rows(self, cfg):
        result = run_fig9(cfg)
        names = set(result.row_dict())
        assert {"CAWT", "CAWOT", "Guideline", "MPC", "DT", "MLP",
                "LSTM"} == names

    def test_table8_has_both_threshold_kinds(self, cfg):
        result = run_table8(cfg)
        kinds = {row[1] for row in result.rows}
        assert "patient-specific" in kinds  # population needs >1 patient

    def test_table7_outcomes(self, cfg):
        result = run_table7(cfg)
        rows = result.row_dict()
        assert set(rows) == {"CAWT", "DT", "MLP", "MPC"}
        for row in result.rows:
            assert row[2] >= 0  # new hazards
            assert row[3] >= 0  # avg risk


def _assert_rows_identical(a, b):
    """Element-wise row equality, treating NaN == NaN (a metric undefined
    serially must be undefined in parallel too)."""
    assert len(a) == len(b)
    for row_a, row_b in zip(a, b):
        assert len(row_a) == len(row_b)
        for x, y in zip(row_a, row_b):
            if isinstance(x, float) and isinstance(y, float) \
                    and math.isnan(x) and math.isnan(y):
                continue
            assert x == y


class TestWorkerParity:
    """Acceptance contract of the parallel layers: experiments driven with
    ``workers=4`` reproduce the serial Table VI/VIII metrics exactly —
    training jobs, per-fold threshold fits and replay included."""

    def test_table6_metrics_identical_across_worker_counts(self, cfg):
        import repro.experiments.data as data_module
        serial = run_table6(cfg)
        # drop the trained-monitor cache so the parallel run actually
        # retrains (simulated traces stay shared — they have their own
        # parity suite)
        data_module._ML_CACHE.clear()
        parallel = run_table6(dataclasses.replace(cfg, workers=4))
        _assert_rows_identical(serial.rows, parallel.rows)

    def test_table8_metrics_identical_across_worker_counts(self, cfg):
        serial = run_table8(cfg)
        parallel = run_table8(dataclasses.replace(cfg, workers=4))
        _assert_rows_identical(serial.rows, parallel.rows)


class TestSearchExperiment:
    def test_rows_and_ratio(self, cfg):
        from repro.experiments import run_search
        result = run_search(dataclasses.replace(cfg, batch_size=32))
        assert [r[0] for r in result.rows] == list(cfg.patients) + ["ALL"]
        for row in result.rows:
            pid, g_sims, g_haz, g_rate, s_sims, s_haz, s_rate, ratio = row
            assert 0 <= g_haz <= g_sims and 0 <= s_haz <= s_sims
            assert ratio == pytest.approx(
                round(s_rate / g_rate if g_rate else float("inf"), 2),
                abs=0.05)
        # the subsystem's headline claim, at smoke scale with slack:
        # adaptive search must out-discover the fixed grid
        assert result.rows[-1][-1] > 1.0
        assert any("best hazard" in note for note in result.notes)

    def test_deterministic_rows(self, cfg):
        from repro.experiments import run_search
        fast = dataclasses.replace(cfg, batch_size=32)
        assert run_search(fast).rows == run_search(fast).rows


class TestDiscussion:
    def test_adversarial_beats_fault_free(self, cfg):
        rows = {row[0]: row for row in run_adversarial_ablation(cfg).rows}
        assert rows["adversarial"][4] >= rows["fault-free"][4]  # F1

    def test_multiclass_rows(self, cfg):
        result = run_multiclass_ablation(cfg)
        assert len(result.rows) == 6  # 3 monitors x 2 heads

    def test_fault_free_generalisation(self, cfg):
        result = run_fault_free_generalisation(cfg)
        rows = result.row_dict()
        assert "CAWT" in rows
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0

    def test_overhead_positive(self, cfg):
        result = run_overhead(cfg)
        for row in result.rows:
            assert row[1] > 0

    def test_result_text_renders(self, cfg):
        text = run_table5(cfg).text()
        assert "Table V" in text and "paper" in text
