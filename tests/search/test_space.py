"""Unit tests for the scenario space and the CE proposal distribution."""

import numpy as np
import pytest

from repro.fi import FaultKind, FaultTarget
from repro.search import (DIMENSION_NAMES, Proposal, ScenarioFamily,
                          ScenarioSpace, default_families)

N_DIMS = len(DIMENSION_NAMES)


class TestScenarioFamily:
    def test_kind_and_target_must_pair(self):
        with pytest.raises(ValueError, match="together"):
            ScenarioFamily(name="half", kind=FaultKind.ADD)
        with pytest.raises(ValueError, match="together"):
            ScenarioFamily(name="half", target=FaultTarget.RATE)

    def test_rejects_invalid_duration_range(self):
        with pytest.raises(ValueError, match="duration_range"):
            ScenarioFamily(name="bad", duration_range=(0, 10))
        with pytest.raises(ValueError, match="duration_range"):
            ScenarioFamily(name="bad", duration_range=(10, 5))

    def test_rejects_magnitude_range_outside_bounds(self):
        with pytest.raises(ValueError, match="magnitude_range"):
            ScenarioFamily(name="too_big", kind=FaultKind.ADD,
                           target=FaultTarget.RATE,
                           magnitude_range=(0.5, 1e9))

    def test_meal_only_family_has_no_fault(self):
        family = ScenarioFamily(name="meal")
        assert not family.has_fault


class TestDefaultFamilies:
    def test_covers_campaign_plus_drift_plus_meal(self):
        families = default_families()
        names = [f.name for f in families]
        assert len(names) == len(set(names)) == 17
        assert {"drift_high", "drift_low", "meal"} <= set(names)
        assert "add_glucose" in names and "truncate_rate" in names

    def test_drift_families_are_long_window_glucose_bias(self):
        by_name = {f.name: f for f in default_families(n_steps=150)}
        for name in ("drift_high", "drift_low"):
            fam = by_name[name]
            assert fam.target is FaultTarget.GLUCOSE
            assert fam.duration_range == (48, 150)
            assert fam.magnitude_range == (5.0, 40.0)

    def test_short_horizon_clamps_durations(self):
        for fam in default_families(n_steps=30):
            if fam.has_fault:   # duration is meaningless for meal-only
                assert fam.duration_range[1] <= 30


class TestScenarioSpace:
    def test_defaults_are_populated(self):
        space = ScenarioSpace()
        assert space.n_families == 17
        assert space.n_dims == N_DIMS

    def test_rejects_duplicate_family_names(self):
        fam = ScenarioFamily(name="dup")
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpace(families=(fam, fam))

    @pytest.mark.parametrize("kwargs", [
        {"n_steps": 1}, {"dt": 0.0}, {"init_bg_range": (0.0, 100.0)},
        {"init_bg_range": (200.0, 100.0)}, {"meal_carbs_range": (-1.0, 5.0)},
        {"meal_window_fraction": 0.0}, {"meal_window_fraction": 1.5},
    ])
    def test_rejects_degenerate_configuration(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpace(**kwargs)

    def test_materialise_validates_inputs(self):
        space = ScenarioSpace()
        mid = np.full(N_DIMS, 0.5)
        with pytest.raises(ValueError, match="family_index"):
            space.materialise(-1, mid)
        with pytest.raises(ValueError, match="family_index"):
            space.materialise(space.n_families, mid)
        with pytest.raises(ValueError, match="coordinates"):
            space.materialise(0, np.full(N_DIMS - 1, 0.5))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            space.materialise(0, np.full(N_DIMS, 1.5))

    def test_materialise_is_total_on_the_cube(self):
        """Every corner and the centre of the cube maps to a valid sample."""
        space = ScenarioSpace(n_steps=60)
        corners = [np.zeros(N_DIMS), np.ones(N_DIMS), np.full(N_DIMS, 0.5)]
        for fi in range(space.n_families):
            for u in corners:
                sample = space.materialise(fi, u)
                run = sample.to_run("B")
                assert run.init_glucose == sample.init_glucose
                if sample.fault is not None:
                    assert sample.fault.start_step < space.n_steps
                    assert sample.fault.duration_steps >= 1

    def test_materialise_deterministic_mapping(self):
        space = ScenarioSpace()
        u = np.array([0.25, 0.5, 0.5, 0.5, 0.75, 0.5])
        a = space.materialise(3, u)
        b = space.materialise(3, u)
        assert a == b
        assert a.params == tuple(u)

    def test_fault_timing_and_magnitude_lerp(self):
        space = ScenarioSpace(n_steps=150)
        by_name = {f.name: i for i, f in enumerate(space.families)}
        idx = by_name["add_glucose"]
        fam = space.families[idx]
        sample = space.materialise(idx, np.array([0, 0, 0, 0, 0, 0.0]))
        assert sample.fault.start_step == 0
        assert sample.fault.duration_steps == fam.duration_range[0]
        assert sample.fault.value == fam.magnitude_range[0]
        sample = space.materialise(idx, np.array([1, 1, 1, 1, 0, 0.0]))
        assert sample.fault.start_step == space.n_steps - 1
        assert sample.fault.duration_steps == fam.duration_range[1]
        assert sample.fault.value == fam.magnitude_range[1]

    def test_small_carbs_mean_no_meal(self):
        space = ScenarioSpace()
        u = np.full(N_DIMS, 0.5)
        u[4] = 0.0   # 0 g < min_meal_carbs
        assert space.materialise(0, u).meals == ()
        u[4] = 1.0   # 120 g
        sample = space.materialise(0, u)
        assert len(sample.meals) == 1
        assert sample.meals[0].carbs == space.meal_carbs_range[1]

    def test_meal_lands_inside_the_window(self):
        space = ScenarioSpace(n_steps=150, dt=5.0)
        u = np.ones(N_DIMS)
        meal = space.materialise(0, u).meals[0]
        assert meal.time <= space.meal_window_fraction * 150 * 5.0

    def test_labels_are_unique_per_scenario(self):
        space = ScenarioSpace()
        rng = np.random.default_rng(0)
        samples = [space.materialise(i % space.n_families,
                                     rng.uniform(size=N_DIMS))
                   for i in range(40)]
        labels = [s.label for s in samples]
        assert len(set(labels)) == len(labels)


class TestProposal:
    def test_uniform_shape(self):
        p = Proposal.uniform(17, N_DIMS)
        assert p.family_probs.shape == (17,)
        assert np.allclose(p.family_probs.sum(), 1.0)
        assert p.mean.shape == p.std.shape == (N_DIMS,)

    def test_validation(self):
        with pytest.raises(ValueError, match="probability"):
            Proposal(family_probs=np.array([0.5, 0.6]),
                     mean=np.full(2, 0.5), std=np.full(2, 0.1))
        with pytest.raises(ValueError, match="positive"):
            Proposal(family_probs=np.array([1.0]),
                     mean=np.full(2, 0.5), std=np.zeros(2))
        with pytest.raises(ValueError, match="matching"):
            Proposal(family_probs=np.array([1.0]),
                     mean=np.full(2, 0.5), std=np.full(3, 0.1))

    def test_sample_bounds_and_determinism(self):
        p = Proposal.uniform(5, N_DIMS)
        fam1, u1 = p.sample(np.random.default_rng(42), 64)
        fam2, u2 = p.sample(np.random.default_rng(42), 64)
        assert np.array_equal(fam1, fam2) and np.array_equal(u1, u2)
        assert fam1.shape == (64,) and u1.shape == (64, N_DIMS)
        assert np.all((fam1 >= 0) & (fam1 < 5))
        assert np.all((u1 >= 0.0) & (u1 <= 1.0))

    def test_refit_moves_toward_elites(self):
        p = Proposal.uniform(4, 2)
        elites = np.array([1, 1, 1, 2])
        elite_u = np.array([[0.9, 0.1]] * 4)
        q = p.refit(elites, elite_u, smoothing=0.7)
        assert q.family_probs[1] > p.family_probs[1]
        assert q.family_probs[0] < p.family_probs[0]
        assert np.all(q.family_probs > 0)   # smoothing keeps a tail
        assert q.mean[0] > p.mean[0] and q.mean[1] < p.mean[1]

    def test_refit_floors_std(self):
        p = Proposal.uniform(2, 2)
        # identical elites => zero empirical std => floor kicks in
        q = p.refit(np.array([0, 0]), np.full((2, 2), 0.5),
                    smoothing=1.0, std_floor=0.07)
        assert np.allclose(q.std, 0.07)

    def test_refit_validation(self):
        p = Proposal.uniform(2, 2)
        with pytest.raises(ValueError, match="smoothing"):
            p.refit(np.array([0]), np.full((1, 2), 0.5), smoothing=0.0)
        with pytest.raises(ValueError, match="std_floor"):
            p.refit(np.array([0]), np.full((1, 2), 0.5), std_floor=0.0)
        with pytest.raises(ValueError, match="shape"):
            p.refit(np.array([0]), np.full((1, 3), 0.5))
        with pytest.raises(ValueError, match="aligned"):
            p.refit(np.array([]), np.empty((0, 2)))
