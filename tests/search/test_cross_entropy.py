"""Cross-entropy search: behaviour, budgets, and the determinism contract.

The determinism suite is the search-layer counterpart of the executor
parity tests: one reference run, then identical ``SearchResult`` contents
(elite sets, proposal trajectory, findings, element-wise identical
traces) for every ``batch_size`` x ``workers`` combination.
"""

import numpy as np
import pytest

from repro.search import CrossEntropySearch, ScenarioSpace
from tests.conftest import _assert_traces_equal

#: small-but-real search budget shared by this module's fixtures
N_STEPS = 60
POPULATION = 16
ITERATIONS = 3
SEED = 7


def _search(**overrides):
    kw = dict(platform="glucosym", patient_id="B", n_steps=N_STEPS,
              population=POPULATION, iterations=ITERATIONS,
              keep_traces=True)
    kw.update(overrides)
    return CrossEntropySearch(**kw)


@pytest.fixture(scope="module")
def reference_result():
    """The serial scalar-path run every other configuration must match."""
    return _search(workers=1, batch_size=1).run(seed=SEED)


def _assert_results_identical(a, b):
    assert a.n_simulations == b.n_simulations
    assert a.stop_reason == b.stop_reason
    assert len(a.iterations) == len(b.iterations)
    for sa, sb in zip(a.iterations, b.iterations):
        assert sa.elite_indices == sb.elite_indices
        assert sa.n_hazardous == sb.n_hazardous
        assert sa.best_score == sb.best_score
        assert sa.elite_threshold == sb.elite_threshold
        assert sa.mean_score == sb.mean_score
        assert np.array_equal(sa.family_probs, sb.family_probs)
        assert np.array_equal(sa.mean, sb.mean)
        assert np.array_equal(sa.std, sb.std)
    assert np.array_equal(a.proposal.family_probs, b.proposal.family_probs)
    assert np.array_equal(a.proposal.mean, b.proposal.mean)
    assert np.array_equal(a.proposal.std, b.proposal.std)
    assert len(a.findings) == len(b.findings)
    for fa, fb in zip(a.findings, b.findings):
        assert (fa.iteration, fa.index) == (fb.iteration, fb.index)
        assert fa.sample == fb.sample
        assert fa.score == fb.score
        _assert_traces_equal(fa.trace, fb.trace)


class TestDeterminism:
    @pytest.mark.parametrize("batch_size", [1, 8, 32])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_bit_identical_across_executors(self, reference_result,
                                            workers, batch_size):
        result = _search(workers=workers,
                         batch_size=batch_size).run(seed=SEED)
        _assert_results_identical(reference_result, result)

    def test_same_seed_same_result(self, reference_result):
        again = _search(workers=1, batch_size=1).run(seed=SEED)
        _assert_results_identical(reference_result, again)

    def test_different_seed_different_population(self, reference_result):
        other = _search(workers=1, batch_size=32).run(seed=SEED + 1)
        ref_labels = {f.label for f in reference_result.findings}
        other_labels = {f.label for f in other.findings}
        assert ref_labels != other_labels

    def test_result_records_configuration(self, reference_result):
        assert reference_result.platform == "glucosym"
        assert reference_result.patient_id == "B"
        assert reference_result.seed == SEED


class TestSearchBehaviour:
    def test_finds_hazards_and_attaches_traces(self, reference_result):
        assert reference_result.n_hazardous >= 1
        assert 0.0 < reference_result.hazards_per_simulation <= 1.0
        for finding in reference_result.findings:
            assert finding.trace is not None
            assert finding.score.hazardous
            assert finding.trace.label == finding.label
        best = reference_result.best
        assert best is not None
        assert best.score.score == max(
            f.score.score for f in reference_result.findings)

    def test_traces_dropped_by_default(self):
        result = _search(keep_traces=False, batch_size=32,
                         iterations=1).run(seed=SEED)
        assert all(f.trace is None for f in result.findings)

    def test_summary_mentions_counts_and_stop_reason(self, reference_result):
        text = reference_result.summary()
        assert str(reference_result.n_hazardous) in text
        assert reference_result.stop_reason in text

    def test_target_hazards_stops_early(self):
        result = _search(batch_size=32, iterations=6,
                         target_hazards=1).run(seed=SEED)
        assert result.stop_reason == "hazard target reached"
        assert result.n_hazardous >= 1
        assert len(result.iterations) < 6

    def test_simulation_budget_caps_total(self):
        result = _search(batch_size=32, iterations=6,
                         max_simulations=POPULATION + 4).run(seed=SEED)
        assert result.stop_reason == "simulation budget"
        assert result.n_simulations <= POPULATION + 4
        # the truncated final generation still ran and was recorded
        assert result.iterations[-1].n_simulations == 4

    def test_elite_scores_dominate_population(self, reference_result):
        stats = reference_result.iterations[0]
        assert stats.best_score >= stats.elite_threshold >= stats.mean_score


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"population": 1}, {"elite_frac": 0.0}, {"elite_frac": 1.5},
        {"iterations": 0}, {"max_simulations": 0}, {"target_hazards": 0},
    ])
    def test_rejects_degenerate_budgets(self, kwargs):
        with pytest.raises(ValueError):
            _search(**kwargs)

    def test_rejects_horizon_mismatch(self):
        with pytest.raises(ValueError, match="horizon"):
            _search(space=ScenarioSpace(n_steps=N_STEPS + 10))
