"""CI benchmark-regression gate.

Runs a small *fixed* benchmark configuration — the ``ci``-scale grids behind
``benchmarks/bench_parallel_campaign.py``, ``bench_vector_campaign.py``,
``bench_vector_replay.py``, ``bench_vector_mitigation.py``,
``bench_serve.py`` and ``benchmarks/bench_table6_ml.py`` — and writes
``BENCH_<sha>.json`` with
per-benchmark wall time (plus the serial-vs-vector simulation, replay and
mitigation speedups) and the process peak RSS.  The measurements are then
compared against the committed ``benchmarks/BENCH_baseline.json``: any
benchmark more than ``TOLERANCE`` (25%) slower than its baseline, or peak
RSS more than 25% above it, fails the job.  The batched replay and
mitigation entries additionally enforce absolute floors:
``replay_vector`` must be at least ``REPLAY_SPEEDUP_FLOOR`` (3x) faster
than the scalar replay, and ``mitigation_vector`` at least
``MITIGATION_SPEEDUP_FLOOR`` (3x) faster than the scalar mitigated loop,
whatever the baseline says.  The ``search`` entry (the cross-entropy
scenario search of ``repro.search``) is gated the same way: timed
against the baseline and floored at ``SEARCH_EFFICIENCY_FLOOR`` (3x)
hazards-found-per-simulation relative to the fixed grid.  The ``serve``
entry drives the online monitor service with the deterministic load
generator and floors sustained throughput at ``SERVE_THROUGHPUT_FLOOR``
(10k user-ticks/sec — a 10k-user fleet served inside one tick), recording
the p99 tick latency alongside.  The ``serve_recovery`` entry re-runs
the same fleet with the write-ahead journal fsync'd, snapshots, and
recovers the service from disk: its wall time gates the snapshot +
recovery path, and the recorded journal overhead is capped at
``JOURNAL_OVERHEAD_CEILING`` (15% throughput loss vs journal-off) —
durability may not eat the serving headroom.  The JSON is uploaded as a
CI artifact either way, so every commit leaves a performance record.

The baseline is calibrated on the CI runner class; after an intentional
performance change (or a runner upgrade), refresh it with::

    python scripts/ci_bench.py --update-baseline

Run:  python scripts/ci_bench.py [--output BENCH_<sha>.json]
"""

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time

from repro.baselines import GuidelineMonitor, MPCMonitor
from repro.core import (FixedMitigator, cawot_monitor, cawt_monitor,
                        learn_thresholds)
from repro.experiments import ExperimentConfig
from repro.experiments.data import platform_data
from repro.experiments.table6 import run_table6
from repro.fi import CampaignConfig, generate_campaign
from repro.ml import train_dt_monitor
from repro.search import CrossEntropySearch
from repro.serve import MonitorService, run_load
from repro.simulation import replay_campaign, run_campaign, warm_profiles

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "BENCH_baseline.json")

#: a benchmark may be this much slower than its committed baseline
TOLERANCE = 0.25

#: absolute scheduling-jitter allowance added on top of the fractional
#: tolerance — sub-second entries (the vectorized paths) would otherwise
#: gate on a few tens of milliseconds, which shared CI runners cannot
#: hold; their real guard is the speedup floor below
JITTER_SLACK_SECONDS = 0.25

#: absolute floor for the batched-replay speedup (the path's acceptance
#: bar, enforced independently of the committed baseline)
REPLAY_SPEEDUP_FLOOR = 3.0

#: absolute floor for the batched mitigated-campaign speedup (Table VII
#: closed loop: monitor + mitigator in the lock-step engine)
MITIGATION_SPEEDUP_FLOOR = 3.0

#: absolute floor for the scenario search's discovery efficiency:
#: hazards-per-simulation must beat the fixed grid's by at least this
#: ratio (the repro.search acceptance bar, see docs/scenario_search.md)
SEARCH_EFFICIENCY_FLOOR = 3.0

#: absolute floor for the online monitor service: one process must
#: sustain at least this many user-ticks per second of service time at
#: the 5-minute cadence — i.e. serve >= 10k users per tick — under the
#: deterministic load generator (see docs/monitor_service.md)
SERVE_THROUGHPUT_FLOOR = 10_000

#: fleet size the serve benchmark drives (== the floor: the gate checks
#: that a fleet of this size is served in under one tick interval)
SERVE_FLEET_SIZE = 10_000
SERVE_TICKS = 5

#: hard ceiling on the crash-safety tax: serving with the fsync'd
#: write-ahead journal may cost at most this fraction of journal-off
#: throughput (the same budget bench_serve.py asserts)
JOURNAL_OVERHEAD_CEILING = 0.15


def git_sha() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.check_output(["git", "rev-parse", "HEAD"],
                                       cwd=REPO_ROOT, text=True).strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def peak_rss_mb() -> float:
    """Peak resident set size of this process (ru_maxrss is KiB on Linux,
    bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak /= 1024.0
    return peak / 1024.0


def run_benchmarks() -> dict:
    """The fixed ``ci``-scale benchmark set, warmed and in a fixed order."""
    config = ExperimentConfig.preset("ci")
    # titrate controller profiles up front (one lock-step batch) so every
    # number below is steady-state throughput, not one-time setup cost
    warm_profiles(config.platform, config.patients)
    scenarios = generate_campaign(CampaignConfig(stride=config.stride))
    results = {}

    def timed(name, fn):
        start = time.perf_counter()
        out = fn()
        results[name] = {"seconds": round(time.perf_counter() - start, 3)}
        print(f"  {name}: {results[name]['seconds']}s", flush=True)
        return out

    n = len(config.patients) * len(scenarios)
    print(f"ci grid: {n} simulations", flush=True)
    timed("campaign_serial",
          lambda: run_campaign(config.platform, config.patients, scenarios,
                               n_steps=config.n_steps))
    timed("campaign_workers2",
          lambda: run_campaign(config.platform, config.patients, scenarios,
                               n_steps=config.n_steps, workers=2))
    traces = timed(
        "campaign_vector",
        lambda: run_campaign(config.platform, config.patients, scenarios,
                             n_steps=config.n_steps, batch_size=32))
    vector_speedup = round(results["campaign_serial"]["seconds"]
                           / max(results["campaign_vector"]["seconds"], 1e-9), 2)
    results["campaign_vector"]["speedup_vs_serial"] = vector_speedup
    print(f"  serial/vector speedup: {vector_speedup}x", flush=True)

    # batched monitor replay over the campaign just simulated: the Table V
    # monitor set plus a trained DT, scalar loop vs observe_batch path
    monitors = {
        "CAWT": cawt_monitor(learn_thresholds(traces,
                                              batch_size=32).thresholds),
        "CAWOT": cawot_monitor(),
        "Guideline": GuidelineMonitor(),
        "MPC": MPCMonitor(horizon_steps=config.mpc_horizon),
        "DT": train_dt_monitor(traces),
    }
    timed("replay_serial", lambda: replay_campaign(monitors, traces))
    timed("replay_vector",
          lambda: replay_campaign(monitors, traces, batch_size=32))
    replay_speedup = round(results["replay_serial"]["seconds"]
                           / max(results["replay_vector"]["seconds"], 1e-9), 2)
    results["replay_vector"]["speedup_vs_serial"] = replay_speedup
    print(f"  serial/vector replay speedup: {replay_speedup}x", flush=True)

    # mitigated closed loop (Table VII configuration): CAWOT monitor wired
    # to the fixed Algorithm 1 strategy, scalar loop vs lock-step batches
    mitigation_kwargs = dict(monitor_factory=lambda pid: cawot_monitor(),
                             mitigator=FixedMitigator(),
                             n_steps=config.n_steps)
    timed("mitigation_serial",
          lambda: run_campaign(config.platform, config.patients, scenarios,
                               **mitigation_kwargs))
    timed("mitigation_vector",
          lambda: run_campaign(config.platform, config.patients, scenarios,
                               batch_size=32, **mitigation_kwargs))
    mitigation_speedup = round(
        results["mitigation_serial"]["seconds"]
        / max(results["mitigation_vector"]["seconds"], 1e-9), 2)
    results["mitigation_vector"]["speedup_vs_serial"] = mitigation_speedup
    print(f"  serial/vector mitigation speedup: {mitigation_speedup}x",
          flush=True)

    # cross-entropy scenario search (repro.search) on the batched path:
    # gate both its wall time and its discovery efficiency against the
    # grid campaign measured above
    def run_searches():
        found = []
        for i, pid in enumerate(config.patients):
            search = CrossEntropySearch(platform=config.platform,
                                        patient_id=pid,
                                        n_steps=config.n_steps,
                                        population=32, iterations=6,
                                        batch_size=32)
            found.append(search.run(seed=i))
        return found

    results_by_patient = timed("search", run_searches)
    grid_rate = sum(t.hazardous for t in traces) / len(traces)
    search_sims = sum(r.n_simulations for r in results_by_patient)
    search_hazards = sum(r.n_hazardous for r in results_by_patient)
    search_rate = search_hazards / max(search_sims, 1)
    ratio = round(search_rate / max(grid_rate, 1e-9), 2)
    results["search"]["hazards_per_1k"] = round(1000.0 * search_rate, 1)
    results["search"]["hazard_ratio_vs_grid"] = ratio
    print(f"  search efficiency: {results['search']['hazards_per_1k']} "
          f"hazards/1k sims, {ratio}x the grid", flush=True)

    # online monitor service: the stateless serving set (CAWT, CAWOT, DT
    # — all trained above) under the deterministic load generator; the
    # gate floors sustained user-ticks/sec at SERVE_THROUGHPUT_FLOOR and
    # tracks the p99 tick latency
    serve_monitors = {name: monitors[name] for name in ("CAWT", "CAWOT",
                                                        "DT")}
    service = MonitorService(serve_monitors)
    report = timed("serve", lambda: run_load(service, SERVE_FLEET_SIZE,
                                             SERVE_TICKS, seed=0))
    results["serve"]["users_per_sec"] = round(report.users_per_sec, 1)
    results["serve"]["p99_tick_ms"] = round(report.p99_tick_ms, 2)
    print(f"  serve: {report.summary()}", flush=True)

    # crash-safe serving: the same fleet with the fsync'd write-ahead
    # journal on, then the snapshot + recovery path; records the journal
    # overhead (gated at JOURNAL_OVERHEAD_CEILING) and times bringing a
    # 10k-user fleet back from disk.  Single 0.1s-scale runs see ±20%
    # scheduler jitter, so the overhead compares best-of-two per side.
    with tempfile.TemporaryDirectory() as tmp:
        plain_best = journaled_best = 0.0
        persisted = None
        state_dir = None
        for attempt in range(2):
            plain = run_load(MonitorService(serve_monitors),
                             SERVE_FLEET_SIZE, SERVE_TICKS, seed=0)
            plain_best = max(plain_best, plain.users_per_sec)
            if persisted is not None:
                persisted.close()
            state_dir = os.path.join(tmp, f"state{attempt}")
            persisted = MonitorService(serve_monitors,
                                       persist_dir=state_dir, fsync=True)
            journaled = run_load(persisted, SERVE_FLEET_SIZE, SERVE_TICKS,
                                 seed=0)
            journaled_best = max(journaled_best, journaled.users_per_sec)

        def snapshot_and_recover():
            persisted.snapshot()
            persisted.close()
            return MonitorService.recover(state_dir)

        recovered = timed("serve_recovery", snapshot_and_recover)
        assert recovered.n_users == SERVE_FLEET_SIZE
        overhead = round(1.0 - journaled_best / max(plain_best, 1e-9), 3)
        results["serve_recovery"]["journal_overhead"] = overhead
        results["serve_recovery"]["journaled_users_per_sec"] = round(
            journaled_best, 1)
        print(f"  journal overhead: {overhead:+.1%} "
              f"({journaled_best:,.0f} user-ticks/s journaled)",
              flush=True)

    # warm the shared experiment cache so the table6 number measures the
    # monitors (ML training jobs, threshold learning, replay) — the stage
    # this repo's training layer parallelises — not re-simulation
    platform_data(config)
    timed("table6_ml", lambda: run_table6(config))
    return results


def check_against_baseline(results: dict, peak_mb: float,
                           tolerance: float) -> list:
    """Return a list of human-readable regression descriptions."""
    if not os.path.exists(BASELINE_PATH):
        return [f"no committed baseline at {BASELINE_PATH}; run "
                "scripts/ci_bench.py --update-baseline and commit the result"]
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    regressions = []
    for name, entry in baseline["benchmarks"].items():
        if name not in results:
            regressions.append(f"benchmark {name!r} in the baseline was not "
                               "measured — ci_bench.py and the baseline are "
                               "out of sync")
            continue
        allowed = entry["seconds"] * (1.0 + tolerance) + JITTER_SLACK_SECONDS
        measured = results[name]["seconds"]
        if measured > allowed:
            regressions.append(
                f"{name}: {measured}s exceeds baseline "
                f"{entry['seconds']}s by more than {tolerance:.0%} "
                f"+ {JITTER_SLACK_SECONDS}s jitter slack "
                f"(allowed {allowed:.2f}s)")
    allowed_rss = baseline["peak_rss_mb"] * (1.0 + tolerance)
    if peak_mb > allowed_rss:
        regressions.append(
            f"peak RSS {peak_mb:.1f} MB exceeds baseline "
            f"{baseline['peak_rss_mb']} MB by more than {tolerance:.0%} "
            f"(allowed {allowed_rss:.1f} MB)")
    # absolute floor, independent of the committed baseline: batched
    # replay must stay >= REPLAY_SPEEDUP_FLOOR x over the scalar loop
    replay = results.get("replay_vector", {})
    speedup = replay.get("speedup_vs_serial")
    if speedup is not None and speedup < REPLAY_SPEEDUP_FLOOR:
        regressions.append(
            f"replay_vector speedup {speedup}x is below the "
            f"{REPLAY_SPEEDUP_FLOOR}x floor — the batched replay path "
            "has degenerated to (or below) scalar throughput")
    mitigation = results.get("mitigation_vector", {})
    speedup = mitigation.get("speedup_vs_serial")
    if speedup is not None and speedup < MITIGATION_SPEEDUP_FLOOR:
        regressions.append(
            f"mitigation_vector speedup {speedup}x is below the "
            f"{MITIGATION_SPEEDUP_FLOOR}x floor — the batched mitigated "
            "closed loop has degenerated to (or below) scalar throughput")
    ratio = results.get("search", {}).get("hazard_ratio_vs_grid")
    if ratio is not None and ratio < SEARCH_EFFICIENCY_FLOOR:
        regressions.append(
            f"search hazard discovery is only {ratio}x the fixed grid's, "
            f"below the {SEARCH_EFFICIENCY_FLOOR}x floor — the "
            "cross-entropy loop has stopped out-hunting enumeration")
    users_per_sec = results.get("serve", {}).get("users_per_sec")
    if users_per_sec is not None and users_per_sec < SERVE_THROUGHPUT_FLOOR:
        regressions.append(
            f"serve throughput {users_per_sec:,.0f} user-ticks/s is below "
            f"the {SERVE_THROUGHPUT_FLOOR:,} floor — one service process "
            "can no longer hold a 10k-user fleet at the 5-minute cadence")
    overhead = results.get("serve_recovery", {}).get("journal_overhead")
    if overhead is not None and overhead > JOURNAL_OVERHEAD_CEILING:
        regressions.append(
            f"write-ahead journaling costs {overhead:.1%} of serve "
            f"throughput, over the {JOURNAL_OVERHEAD_CEILING:.0%} ceiling "
            "— durability is eating the serving headroom")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="result path (default: BENCH_<sha>.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help=f"write the measurements to {BASELINE_PATH} "
                             "instead of gating against it")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional slowdown (default 0.25)")
    args = parser.parse_args(argv)

    sha = git_sha()
    results = run_benchmarks()
    peak_mb = round(peak_rss_mb(), 1)
    print(f"peak RSS: {peak_mb} MB", flush=True)
    doc = {
        "sha": sha,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": results,
        "peak_rss_mb": peak_mb,
    }

    output = args.output or os.path.join(os.getcwd(), f"BENCH_{sha}.json")
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
    print(f"wrote {output}")

    if args.update_baseline:
        baseline = dict(doc)
        baseline.pop("sha")  # the baseline describes a config, not a commit
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"updated {BASELINE_PATH}")
        return 0

    regressions = check_against_baseline(results, peak_mb, args.tolerance)
    if regressions:
        print("\nFAIL: benchmark regression(s) vs committed baseline:")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print(f"\nOK: all benchmarks within {args.tolerance:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
