"""Stdlib line-coverage measurement for the tier-1 suite.

Runs the full pytest suite in-process with a line tracer restricted to
``src/repro`` and reports per-module and total line coverage: executed
lines over the executable-line universe derived from each module's
compiled code objects (``co_lines``).  No third-party coverage package
is required — this is the tool that calibrates the ``--cov-fail-under``
floor in ``.github/workflows/ci.yml`` on machines where ``pytest-cov``
is not installed.  The number it reports is a close stand-in for
coverage.py's (same universe construction, modulo docstring handling),
so set the CI floor a point or two *below* the figure printed here and
never above it.

Calibration procedure (run whenever a PR adds or removes enough code to
move the figure — new subsystems, large test batteries):

1. ``python scripts/measure_coverage.py --no-modules`` on a clean
   checkout of the branch.  The suite must pass; a failing run prints
   no meaningful figure.
2. Take the printed TOTAL percentage and subtract 1–2 points of head
   room — the stdlib tracer and coverage.py disagree slightly on
   docstring/`` if TYPE_CHECKING``-style lines, and subprocess-heavy
   tests (forked pool workers, ``python -m`` worker entrypoints) are
   untraced under both tools, so the CI figure jitters around this
   one.
3. Set ``--cov-fail-under`` in the ``coverage`` job of
   ``.github/workflows/ci.yml`` to that floored value.  Raise the
   floor when the measured figure rises; never lower it just to make a
   PR pass — a genuine drop needs the offending code tested or the
   drop justified in the PR.
4. For a local gate without editing CI:
   ``python scripts/measure_coverage.py --floor <value> --no-modules``.

On Python 3.12+ the measurement uses ``sys.monitoring`` (PEP 669) with
per-location disarming, which costs a few percent of runtime.  On older
interpreters it falls back to ``sys.settrace`` with per-code-object
disarming once a code object is fully covered; expect the suite to run
a few times slower than untraced.

Subprocess workers (``workers=2`` tests) are not traced, matching the
default pytest-cov configuration the CI job uses.

Run:  python scripts/measure_coverage.py [pytest args...]
      python scripts/measure_coverage.py --floor 86   # gate, don't list
"""

import argparse
import os
import sys
import threading
import types

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
PKG_DIR = os.path.join(SRC_DIR, "repro")


def executable_lines(path: str) -> set:
    """The executable-line universe of one module: every line number
    mentioned by the compiled module's code objects, recursively."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None and lineno > 0:
                lines.add(lineno)
        stack.extend(const for const in code.co_consts
                     if isinstance(const, types.CodeType))
    return lines


def package_universe() -> dict:
    universe = {}
    for dirpath, _, filenames in os.walk(PKG_DIR):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                universe[path] = executable_lines(path)
    return universe


class MonitoringTracer:
    """sys.monitoring (3.12+): LINE events, disarmed per location after
    the first hit — near-zero steady-state overhead."""

    def __init__(self):
        self.executed = {}

    def _on_line(self, code, lineno):
        filename = code.co_filename
        if filename.startswith(PKG_DIR):
            self.executed.setdefault(filename, set()).add(lineno)
        return sys.monitoring.DISABLE

    def __enter__(self):
        mon = sys.monitoring
        mon.use_tool_id(mon.COVERAGE_ID, "measure_coverage")
        mon.register_callback(mon.COVERAGE_ID, mon.events.LINE,
                              self._on_line)
        mon.set_events(mon.COVERAGE_ID, mon.events.LINE)
        return self

    def __exit__(self, *exc):
        mon = sys.monitoring
        mon.set_events(mon.COVERAGE_ID, 0)
        mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, None)
        mon.free_tool_id(mon.COVERAGE_ID)


class SettraceTracer:
    """sys.settrace fallback: frames outside src/repro are never locally
    traced, and a code object whose lines are all covered stops being
    traced on subsequent calls."""

    def __init__(self, universe: dict):
        self.executed = {}
        self._remaining = {}
        self._universe = universe

    def _trace(self, frame, event, arg):
        code = frame.f_code
        if event == "call":
            filename = code.co_filename
            if not filename.startswith(PKG_DIR):
                return None
            if code not in self._remaining:
                self._remaining[code] = {
                    lineno for _, _, lineno in code.co_lines()
                    if lineno is not None and lineno > 0}
            return self._trace if self._remaining[code] else None
        if event == "line":
            remaining = self._remaining.get(code)
            if remaining is not None:
                remaining.discard(frame.f_lineno)
                self.executed.setdefault(code.co_filename,
                                         set()).add(frame.f_lineno)
                if not remaining:
                    return None
        return self._trace

    def __enter__(self):
        threading.settrace(self._trace)
        sys.settrace(self._trace)
        return self

    def __exit__(self, *exc):
        sys.settrace(None)
        threading.settrace(None)


def report(universe: dict, executed: dict, list_modules: bool) -> float:
    total_lines = total_hit = 0
    rows = []
    for path in sorted(universe):
        lines = universe[path]
        hit = executed.get(path, set()) & lines
        total_lines += len(lines)
        total_hit += len(hit)
        if lines:
            rows.append((os.path.relpath(path, SRC_DIR), len(lines),
                         len(lines) - len(hit),
                         100.0 * len(hit) / len(lines)))
    if list_modules:
        width = max(len(name) for name, *_ in rows)
        print(f"{'module'.ljust(width)}  lines  miss   cover")
        for name, n_lines, n_miss, pct in rows:
            print(f"{name.ljust(width)}  {n_lines:5d} {n_miss:5d} "
                  f"{pct:6.1f}%")
    percent = 100.0 * total_hit / max(total_lines, 1)
    print(f"TOTAL: {total_hit}/{total_lines} executable lines covered "
          f"= {percent:.1f}%")
    return percent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--floor", type=float, default=None,
                        help="fail if total coverage is below this percent")
    parser.add_argument("--no-modules", action="store_true",
                        help="print only the total, not the per-module table")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest")
    args = parser.parse_args(argv)

    # mirror `python -m pytest` run from the repo root: the package from
    # src/, and the repo root itself so tests can import helper modules
    # from other test packages (tests.simulation.…)
    sys.path.insert(0, SRC_DIR)
    sys.path.insert(0, REPO_ROOT)
    import pytest

    universe = package_universe()
    n_lines = sum(len(lines) for lines in universe.values())
    print(f"tracing {len(universe)} modules, {n_lines} executable lines "
          f"({'sys.monitoring' if hasattr(sys, 'monitoring') else 'sys.settrace'})",
          flush=True)

    if hasattr(sys, "monitoring"):
        tracer = MonitoringTracer()
    else:
        tracer = SettraceTracer(universe)
    pytest_args = ["-x", "-q", *args.pytest_args]
    with tracer:
        exit_code = pytest.main(pytest_args)
    if exit_code != 0:
        print(f"FAIL: pytest exited {exit_code}; coverage not meaningful")
        return int(exit_code)

    percent = report(universe, tracer.executed, not args.no_modules)
    if args.floor is not None and percent < args.floor:
        print(f"FAIL: coverage {percent:.1f}% is below the "
              f"{args.floor:.0f}% floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
