"""CI smoke check: parallel execution, the vectorized engine, the on-disk
store, the training fan-out and batched monitor replay must all be exact.

Runs the ``ci``-scale fault-injection grid through the serial executor,
through a 2-worker process pool and through the lock-step vectorized
engine (``batch_size=4``), asserting that all three trace streams are
element-wise identical (every array channel, every metadata field).  This
is the determinism guarantee the parallel and vector engines are built on.  The same
traces are then streamed through a :class:`CampaignStoreWriter` into a
temporary on-disk dataset, lazily reopened as a :class:`TraceDataset` and
compared element-wise again (plus a plan-fingerprint check), so the
write-once/replay-many store is covered by the same every-push smoke.
The DT/MLP/LSTM :class:`TrainingJob` grid is trained serially and
through the worker pool and the resulting monitors are compared parameter
by parameter — the training-parity contract of ``repro.ml.training``.
Every monitor kind (CAWT, CAWOT, Guideline, MPC and the trained
DT/MLP/LSTM) is then replayed over the campaign scalar and through the
batched ``observe_batch`` path at batch sizes {7, 32} x workers {1, 2},
asserting element-wise identical alert streams — the exact-parity
contract of ``repro.simulation.vector_replay``.  The same campaign is then pushed
through the online :class:`MonitorService` as a live tick stream
(``repro.serve.replay_log``) twice, and both served runs must reproduce
the offline ``replay_campaign`` alert streams element-wise at offline
batch sizes {1, 8} — the serving parity contract.  A crash-recovery
smoke then kills a journaled service (``persist_dir``) at two mid-run
tick boundaries and recovers it from snapshot + write-ahead journal
(``repro.serve.chaos``): the stitched alert stream must be element-wise
identical to the uninterrupted run — the crash-safety parity contract of
``repro.serve.persist``.  Then the *mitigated*
closed loop (CAWOT monitor wired to the fixed Algorithm 1 strategy, the
Table VII configuration) is swept across batch sizes {1, 8} x workers
{1, 2} and every combination must reproduce the scalar mitigated run
element-wise — the live lock-step monitor/mitigator path of
``repro.simulation.vector``.  A tiny cross-entropy scenario-search
budget (``repro.search``) must find at least one hazard on the ``ci``
preset and return a seed-deterministic ``SearchResult`` across executor
shapes.  Last, the same grid is run as a 2-host distributed campaign
(``repro.distributed``: subprocess range workers, one hard-killed
mid-range and retried) and the merged dataset must be byte-identical to
the single-box reference — manifest fingerprint, manifest bytes and
element-wise traces.

Run:  python scripts/ci_smoke_parallel.py [workers]
"""

import dataclasses
import os
import sys
import tempfile
import time

import numpy as np

from repro.baselines import GuidelineMonitor, MPCMonitor
from repro.core import (FixedMitigator, cawot_monitor, cawt_monitor,
                        learn_thresholds)
from repro.experiments import ExperimentConfig
from repro.experiments.data import ml_baseline_jobs
from repro.fi import CampaignConfig, generate_campaign
from repro.ml import monitor_state, run_training_jobs
from repro.search import CrossEntropySearch
from repro.serve import MonitorService, replay_log
from repro.serve.chaos import (crash_recovery_run, drive, fleet_ticks,
                               results_equal)
from repro.simulation import (CampaignStoreWriter, TraceDataset,
                              plan_campaign, plan_fingerprint,
                              replay_campaign, run_campaign)


def traces_identical(a, b) -> bool:
    if (a.platform, a.patient_id, a.label, a.dt, a.fault) != \
       (b.platform, b.patient_id, b.label, b.dt, b.fault):
        return False
    for f in dataclasses.fields(a):
        value = getattr(a, f.name)
        if isinstance(value, np.ndarray) and \
                not np.array_equal(value, getattr(b, f.name)):
            return False
    return True


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    config = ExperimentConfig.preset("ci")
    scenarios = generate_campaign(CampaignConfig(stride=config.stride))
    n_expected = len(config.patients) * len(scenarios)
    print(f"ci grid: {len(config.patients)} patients x "
          f"{len(scenarios)} scenarios = {n_expected} simulations")

    start = time.perf_counter()
    serial = run_campaign(config.platform, config.patients, scenarios,
                          n_steps=config.n_steps)
    t_serial = time.perf_counter() - start
    print(f"serial: {t_serial:.2f}s ({n_expected / t_serial:.1f} traces/sec)")

    start = time.perf_counter()
    parallel = run_campaign(config.platform, config.patients, scenarios,
                            n_steps=config.n_steps, workers=workers)
    t_parallel = time.perf_counter() - start
    print(f"{workers} workers: {t_parallel:.2f}s "
          f"({n_expected / t_parallel:.1f} traces/sec, "
          f"{t_serial / t_parallel:.2f}x)")

    if len(serial) != n_expected or len(parallel) != n_expected:
        print(f"FAIL: expected {n_expected} traces, got "
              f"{len(serial)} serial / {len(parallel)} parallel")
        return 1
    mismatches = [i for i, (s, p) in enumerate(zip(serial, parallel))
                  if not traces_identical(s, p)]
    if mismatches:
        print(f"FAIL: {len(mismatches)} trace(s) differ between serial and "
              f"parallel execution; first at index {mismatches[0]} "
              f"({serial[mismatches[0]].label})")
        return 1
    print(f"OK: all {n_expected} traces element-wise identical")

    # lock-step vectorized engine: batch_size must be invisible in the
    # output too (the parity contract of repro.simulation.vector)
    start = time.perf_counter()
    vector = run_campaign(config.platform, config.patients, scenarios,
                          n_steps=config.n_steps, batch_size=4)
    t_vector = time.perf_counter() - start
    print(f"batch_size=4: {t_vector:.2f}s "
          f"({n_expected / t_vector:.1f} traces/sec, "
          f"{t_serial / t_vector:.2f}x)")
    mismatches = [i for i, (s, v) in enumerate(zip(serial, vector))
                  if not traces_identical(s, v)]
    if len(vector) != n_expected or mismatches:
        first = f"; first at index {mismatches[0]}" if mismatches else ""
        print(f"FAIL: {len(mismatches)} trace(s) differ between serial and "
              f"vectorized execution{first}")
        return 1
    print("OK: vectorized engine element-wise identical to serial")

    # dataset-store roundtrip: write -> manifest -> lazy reopen -> compare
    plan = plan_campaign(config.platform, config.patients, scenarios,
                         n_steps=config.n_steps)
    with tempfile.TemporaryDirectory() as root:
        start = time.perf_counter()
        with CampaignStoreWriter(root, config.platform, config.n_steps,
                                 folds=config.folds) as sink:
            for trace in serial:
                sink.write(trace)
        t_write = time.perf_counter() - start
        dataset = TraceDataset.open(root, cache_size=8)
        if dataset.fingerprint != plan_fingerprint(plan):
            print("FAIL: stored fingerprint does not match the campaign plan")
            return 1
        start = time.perf_counter()
        bad = [i for i, (s, d) in enumerate(zip(serial, dataset))
               if not traces_identical(s, d)]
        t_read = time.perf_counter() - start
        if len(dataset) != n_expected or bad:
            print(f"FAIL: store roundtrip mismatch "
                  f"({len(bad)} trace(s), {len(dataset)} stored)")
            return 1
        if dataset.stats.max_resident > 8:
            print(f"FAIL: lazy reader held {dataset.stats.max_resident} "
                  "traces, expected <= its cache window of 8")
            return 1
        print(f"store: write {t_write:.2f}s, lazy reread {t_read:.2f}s, "
              f"max {dataset.stats.max_resident} traces resident — "
              f"all {n_expected} roundtripped identically")

    # training parity: the TrainingJob fan-out must produce element-wise
    # identical monitors (every weight, every split) at any worker count
    jobs = ml_baseline_jobs(config)
    start = time.perf_counter()
    trained_serial = run_training_jobs(jobs, serial)
    t_train_serial = time.perf_counter() - start
    start = time.perf_counter()
    trained_parallel = run_training_jobs(jobs, serial, workers=workers)
    t_train_parallel = time.perf_counter() - start
    print(f"training: {len(jobs)} jobs, serial {t_train_serial:.2f}s, "
          f"{workers} workers {t_train_parallel:.2f}s")
    for a, b in zip(trained_serial, trained_parallel):
        if a.job != b.job or a.n_samples != b.n_samples:
            print(f"FAIL: job order/metadata diverged for {a.name}")
            return 1
        state_a, state_b = monitor_state(a.monitor), monitor_state(b.monitor)
        if len(state_a) != len(state_b) or any(
                not np.array_equal(x, y) for x, y in zip(state_a, state_b)):
            print(f"FAIL: {a.name} monitor trained with {workers} workers "
                  "differs from the serial fit")
            return 1
    print(f"OK: all {len(jobs)} training jobs "
          f"({', '.join(t.name for t in trained_serial)}) element-wise "
          "identical at any worker count")

    # batched replay parity: every monitor kind, scalar vs observe_batch,
    # across batch sizes and worker counts (LSTM exercises the column-loop
    # fallback; a trace subset keeps its per-cycle cost bounded)
    monitors = {
        "CAWT": cawt_monitor(learn_thresholds(serial,
                                              batch_size=32).thresholds),
        "CAWOT": cawot_monitor(),
        "Guideline": GuidelineMonitor(),
        "MPC": MPCMonitor(horizon_steps=config.mpc_horizon),
    }
    monitors.update({t.name: t.monitor for t in trained_serial})
    replay_traces = {name: (serial[:12] if name == "LSTM" else serial)
                     for name in monitors}
    start = time.perf_counter()
    ref = {name: replay_campaign({name: monitor}, replay_traces[name])[name]
           for name, monitor in monitors.items()}
    t_scalar = time.perf_counter() - start
    start = time.perf_counter()
    for batch_size in (7, 32):
        for replay_workers in (1, workers):
            for name, monitor in monitors.items():
                batched = replay_campaign(
                    {name: monitor}, replay_traces[name],
                    workers=replay_workers, batch_size=batch_size)[name]
                bad = [i for i, (a, b) in enumerate(zip(ref[name], batched))
                       if not np.array_equal(a, b)]
                if len(batched) != len(ref[name]) or bad:
                    print(f"FAIL: batched replay of {name} diverges from "
                          f"scalar at batch_size={batch_size}, "
                          f"workers={replay_workers} "
                          f"({len(bad)} trace(s), first at "
                          f"{bad[0] if bad else '?'})")
                    return 1
    t_batched = time.perf_counter() - start
    print(f"OK: batched replay of {len(monitors)} monitor kinds "
          f"({', '.join(monitors)}) element-wise identical to scalar at "
          f"batch sizes 7/32 x workers 1/{workers} "
          f"(scalar {t_scalar:.2f}s, 4 batched sweeps {t_batched:.2f}s)")

    # serving parity: replay the recorded campaign through the online
    # MonitorService as a live tick stream, twice, and compare against
    # the offline replay at batch sizes 1 and 8 — every monitor kind,
    # stateful ones included (per-user clones inside the service)
    offline_refs = {1: ref}
    offline_refs[8] = {
        name: replay_campaign({name: monitor}, replay_traces[name],
                              batch_size=8)[name]
        for name, monitor in monitors.items()}
    fast = {name: m for name, m in monitors.items() if name != "LSTM"}
    start = time.perf_counter()
    for service_run in (1, 2):
        served = replay_log(fast, serial)
        served.update(replay_log({"LSTM": monitors["LSTM"]}, serial[:12]))
        for offline_batch, offline in offline_refs.items():
            for name in monitors:
                bad = [i for i, (a, b) in enumerate(zip(offline[name],
                                                        served[name]))
                       if not np.array_equal(a, b)]
                if len(served[name]) != len(offline[name]) or bad:
                    print(f"FAIL: served alert stream of {name} diverges "
                          f"from offline replay (batch_size={offline_batch}, "
                          f"service run {service_run}, {len(bad)} trace(s), "
                          f"first at {bad[0] if bad else '?'})")
                    return 1
    t_serve = time.perf_counter() - start
    print(f"OK: online service reproduces offline replay of "
          f"{len(monitors)} monitor kinds element-wise "
          f"(2 service runs x offline batch sizes 1/8, {t_serve:.2f}s)")

    # crash-recovery smoke: kill a journaled service at mid-run tick
    # boundaries, recover from snapshot + write-ahead journal, and the
    # stitched stream must match the uninterrupted run element-wise
    chaos_monitors = {name: monitors[name]
                      for name in ("CAWT", "CAWOT", "Guideline")}
    chaos_ticks = fleet_ticks(100, 8, seed=3)
    start = time.perf_counter()
    uninterrupted = drive(MonitorService(chaos_monitors), chaos_ticks)
    with tempfile.TemporaryDirectory() as root:
        for kill_after in (3, 6):
            stitched, recovered = crash_recovery_run(
                chaos_monitors, chaos_ticks,
                os.path.join(root, f"kill{kill_after}"),
                kill_after=kill_after, snapshot_every=3)
            equal, why = results_equal(uninterrupted, stitched)
            if not equal or recovered.recovery_report is None:
                print(f"FAIL: recovery after a kill at tick {kill_after} "
                      f"is not bit-exact: {why}")
                return 1
    t_chaos = time.perf_counter() - start
    print(f"OK: journaled service killed at tick boundaries 3/6 recovers "
          f"to an element-wise identical stream "
          f"(100 users x 8 ticks, {t_chaos:.2f}s)")

    # mitigated-batch parity: the live Table VII closed loop (monitor +
    # mitigator inside the lock-step engine) across batch x worker combos
    mitigation_kwargs = dict(monitor_factory=lambda pid: cawot_monitor(),
                             mitigator=FixedMitigator(),
                             n_steps=config.n_steps)
    start = time.perf_counter()
    mitigated_ref = run_campaign(config.platform, config.patients, scenarios,
                                 **mitigation_kwargs)
    t_mit_scalar = time.perf_counter() - start
    n_fired = sum(bool(trace.mitigated.any()) for trace in mitigated_ref)
    if n_fired == 0:
        print("FAIL: mitigated reference campaign never fired the "
              "mitigator — the parity sweep would be vacuous")
        return 1
    start = time.perf_counter()
    for batch_size in (1, 8):
        for mit_workers in (1, workers):
            combo = run_campaign(config.platform, config.patients, scenarios,
                                 workers=mit_workers, batch_size=batch_size,
                                 **mitigation_kwargs)
            bad = [i for i, (s, v) in enumerate(zip(mitigated_ref, combo))
                   if not traces_identical(s, v)]
            if len(combo) != n_expected or bad:
                print(f"FAIL: mitigated campaign diverges from scalar at "
                      f"batch_size={batch_size}, workers={mit_workers} "
                      f"({len(bad)} trace(s), first at "
                      f"{bad[0] if bad else '?'})")
                return 1
    t_mit_sweep = time.perf_counter() - start
    print(f"OK: mitigated closed loop (CAWOT + FixedMitigator, "
          f"{n_fired}/{n_expected} traces corrected) element-wise identical "
          f"at batch sizes 1/8 x workers 1/{workers} "
          f"(scalar {t_mit_scalar:.2f}s, 4 sweeps {t_mit_sweep:.2f}s)")

    # scenario-search smoke: a tiny cross-entropy budget must still find a
    # hazard on the ci preset, and the SearchResult must be seed-
    # deterministic across executor shapes (the repro.search contract)
    def run_search(search_workers, batch_size):
        return CrossEntropySearch(
            platform=config.platform, patient_id=config.patients[0],
            n_steps=config.n_steps, population=16, iterations=2,
            workers=search_workers, batch_size=batch_size).run(seed=0)

    start = time.perf_counter()
    search_ref = run_search(1, 1)
    t_search = time.perf_counter() - start
    if search_ref.n_hazardous < 1:
        print(f"FAIL: scenario search found no hazard in "
              f"{search_ref.n_simulations} simulations "
              f"({search_ref.summary()})")
        return 1
    for search_workers, batch_size in ((1, 16), (workers, 8)):
        other = run_search(search_workers, batch_size)
        findings_match = (
            [f.label for f in other.findings]
            == [f.label for f in search_ref.findings]
            and [s.elite_indices for s in other.iterations]
            == [s.elite_indices for s in search_ref.iterations])
        if not findings_match or other.n_simulations != search_ref.n_simulations:
            print(f"FAIL: scenario search diverges from the scalar run at "
                  f"batch_size={batch_size}, workers={search_workers}")
            return 1
    print(f"OK: scenario search ({search_ref.summary()}) seed-deterministic "
          f"at batch sizes 1/8/16 x workers 1/{workers} "
          f"(scalar {t_search:.2f}s)")

    # distributed smoke: the same ci grid through 2 subprocess range
    # workers, with one worker hard-killed mid-range and retried — the
    # merged dataset must carry the single-box fingerprint and manifest
    # bytes and reproduce the serial traces element-wise (the
    # distributed parity contract of repro.distributed)
    from repro.distributed import FlakyLauncher, run_distributed_campaign
    from repro.parallel import partition_ranges
    ranges = partition_ranges(len(plan.runs), 2)
    launcher = FlakyLauncher(crash_ranges={ranges[0]: 1})
    with tempfile.TemporaryDirectory() as root:
        ref_dir = os.path.join(root, "reference")
        with CampaignStoreWriter(ref_dir, config.platform, config.n_steps,
                                 folds=config.folds) as sink:
            for trace in serial:
                sink.write(trace)
        start = time.perf_counter()
        result = run_distributed_campaign(
            plan, os.path.join(root, "merged"), n_hosts=2, launcher=launcher,
            folds=config.folds)
        t_dist = time.perf_counter() - start
        if result.retries != 1:
            print(f"FAIL: expected exactly 1 retry of the killed range, "
                  f"coordinator recorded {result.retries}")
            return 1
        ref_manifest = open(os.path.join(ref_dir, "manifest.json"),
                            "rb").read()
        merged_manifest = open(os.path.join(result.out_dir, "manifest.json"),
                               "rb").read()
        if result.manifest["fingerprint"] != plan_fingerprint(plan) \
                or merged_manifest != ref_manifest:
            print("FAIL: merged manifest differs from the single-box "
                  "reference (fingerprint or bytes)")
            return 1
        merged = TraceDataset.open(result.out_dir, cache_size=8)
        bad = [i for i, (s, d) in enumerate(zip(serial, merged))
               if not traces_identical(s, d)]
        if len(merged) != n_expected or bad:
            print(f"FAIL: merged distributed dataset diverges from serial "
                  f"({len(bad)} trace(s), first at "
                  f"{bad[0] if bad else '?'})")
            return 1
    print(f"OK: 2-host distributed campaign (1 injected worker kill + "
          f"retry) merged byte-identical to the single-box reference "
          f"({t_dist:.2f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
