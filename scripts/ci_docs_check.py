"""CI docs check: markdown links must resolve, documented modules must import.

Two drift classes this catches on every push:

1. **Broken intra-repo links** — every relative ``[text](path)`` link in
   the repository's markdown files (README, ROADMAP, docs/) must point at
   an existing file.  External (``http(s)://``, ``mailto:``) and
   pure-anchor links are skipped; a ``path#anchor`` link is checked for
   the file part.
2. **Stale module references** — every backticked ``repro.*`` dotted
   path mentioned in ``docs/architecture.md`` (the system map) must
   resolve: the longest importable module prefix is imported and any
   remaining components (a class, function or attribute, e.g.
   ``repro.simulation.features.ContextBatch``) are resolved with
   ``getattr``.  Renaming or deleting a module or public name without
   updating the map fails the job, which is what keeps the map
   trustworthy.

Run:  python scripts/ci_docs_check.py
"""

import importlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARCHITECTURE_DOC = os.path.join(REPO_ROOT, "docs", "architecture.md")

#: markdown inline links [text](target); images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: backticked dotted module paths under the repro package
_MODULE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z_0-9]*)+)`")
#: link schemes that are not repository paths
_EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files():
    for name in sorted(os.listdir(REPO_ROOT)):
        if name.endswith(".md"):
            yield os.path.join(REPO_ROOT, name)
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def check_links() -> list:
    """Return a list of broken-link descriptions across all markdown."""
    problems = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        rel = os.path.relpath(path, REPO_ROOT)
        for target in _LINK.findall(text):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                problems.append(f"{rel}: link target {target!r} does not "
                                f"exist (resolved {os.path.relpath(resolved, REPO_ROOT)})")
    return problems


def _resolve_dotted(path: str) -> None:
    """Import the longest module prefix of *path*, then getattr the rest.

    Raises on failure — a dotted reference is valid when it names a
    module (``repro.simulation.vector_replay``) or an attribute reached
    through one (``repro.simulation.features.ContextBatch``).
    """
    parts = path.split(".")
    last_error = None
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError as exc:
            last_error = exc
            continue
        for attr in parts[cut:]:
            obj = getattr(obj, attr)  # AttributeError = stale reference
        return
    raise last_error if last_error is not None else ImportError(path)


def check_architecture_modules() -> list:
    """Return resolution failures for every dotted `repro.*` path that
    docs/architecture.md names."""
    if not os.path.exists(ARCHITECTURE_DOC):
        return [f"{os.path.relpath(ARCHITECTURE_DOC, REPO_ROOT)} is missing "
                "— the architecture map is a required docs artifact"]
    with open(ARCHITECTURE_DOC, encoding="utf-8") as fh:
        references = sorted(set(_MODULE.findall(fh.read())))
    if not references:
        return ["docs/architecture.md names no `repro.*` modules — the "
                "module-import drift check has nothing to verify"]
    problems = []
    for reference in references:
        try:
            _resolve_dotted(reference)
        except Exception as exc:  # import/getattr or anything raised there
            problems.append(f"docs/architecture.md references {reference!r} "
                            f"which does not resolve: {exc}")
    print(f"architecture map: {len(references)} references resolve cleanly"
          if not problems else
          f"architecture map: {len(problems)} of {len(references)} "
          "references failed to resolve")
    return problems


def main() -> int:
    # allow running from a checkout without installing the package
    src = os.path.join(REPO_ROOT, "src")
    if os.path.isdir(src) and src not in sys.path:
        sys.path.insert(0, src)

    n_files = len(list(markdown_files()))
    problems = check_links()
    print(f"markdown links: scanned {n_files} files, "
          f"{len(problems)} broken link(s)")
    problems += check_architecture_modules()
    if problems:
        print("\nFAIL: documentation drift detected:")
        for line in problems:
            print(f"  - {line}")
        return 1
    print("\nOK: all intra-repo links resolve and every documented module "
          "imports")
    return 0


if __name__ == "__main__":
    sys.exit(main())
