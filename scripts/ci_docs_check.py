"""CI docs check: markdown links must resolve, documented modules must import,
and no doc may claim the vector engine falls back to the scalar loop.

Three drift classes this catches on every push:

1. **Broken intra-repo links** — every relative ``[text](path)`` link in
   the repository's markdown files (README, ROADMAP, docs/) must point at
   an existing file.  External (``http(s)://``, ``mailto:``) and
   pure-anchor links are skipped; a ``path#anchor`` link is checked for
   the file part.
2. **Stale module references** — every backticked ``repro.*`` dotted
   path mentioned in ``docs/architecture.md`` (the system map) and
   ``docs/mitigation.md`` (the mitigation contract) must resolve: the
   longest importable module prefix is imported and any remaining
   components (a class, function or attribute, e.g.
   ``repro.simulation.features.ContextBatch``) are resolved with
   ``getattr``.  Renaming or deleting a module or public name without
   updating the map fails the job, which is what keeps the map
   trustworthy.
3. **Stale fallback claims** — since the mitigation vectorization,
   monitored and mitigated campaigns batch through the lock-step engine
   like everything else; any surviving "fall(s) back to the scalar
   loop" phrasing in the docs or the ``src``/``scripts`` docstrings is
   flagged (historical records — CHANGES.md, ISSUE.md — are exempt).

Run:  python scripts/ci_docs_check.py
"""

import importlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: docs whose backticked ``repro.*`` dotted references must resolve
#: (doc path, is_required) — a required doc failing to exist is itself drift
MAPPED_DOCS = (
    (os.path.join("docs", "architecture.md"), True),
    (os.path.join("docs", "mitigation.md"), True),
    (os.path.join("docs", "scenario_search.md"), True),
    (os.path.join("docs", "monitor_service.md"), True),
    (os.path.join("docs", "distributed_campaigns.md"), True),
)

#: markdown inline links [text](target); images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: backticked dotted module paths under the repro package
_MODULE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z_0-9]*)+)`")
#: link schemes that are not repository paths
_EXTERNAL = ("http://", "https://", "mailto:")

#: phrasing that predates the vectorized monitor/mitigator path — the
#: engine no longer falls back to the scalar loop for any run shape
_STALE_FALLBACK = re.compile(r"falls?\s+back\s+to\s+the\s+scalar", re.I)
#: historical/task records where the phrase legitimately survives
_STALE_EXEMPT = {"CHANGES.md", "ISSUE.md"}


def markdown_files():
    for name in sorted(os.listdir(REPO_ROOT)):
        if name.endswith(".md"):
            yield os.path.join(REPO_ROOT, name)
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def check_links() -> list:
    """Return a list of broken-link descriptions across all markdown."""
    problems = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        rel = os.path.relpath(path, REPO_ROOT)
        for target in _LINK.findall(text):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                problems.append(f"{rel}: link target {target!r} does not "
                                f"exist (resolved {os.path.relpath(resolved, REPO_ROOT)})")
    return problems


def _resolve_dotted(path: str) -> None:
    """Import the longest module prefix of *path*, then getattr the rest.

    Raises on failure — a dotted reference is valid when it names a
    module (``repro.simulation.vector_replay``) or an attribute reached
    through one (``repro.simulation.features.ContextBatch``).
    """
    parts = path.split(".")
    last_error = None
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError as exc:
            last_error = exc
            continue
        for attr in parts[cut:]:
            obj = getattr(obj, attr)  # AttributeError = stale reference
        return
    raise last_error if last_error is not None else ImportError(path)


def check_architecture_modules() -> list:
    """Return resolution failures for every dotted `repro.*` path named by
    the mapped docs (the architecture map and the mitigation contract)."""
    problems = []
    n_total = 0
    for rel, required in MAPPED_DOCS:
        path = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(path):
            if required:
                problems.append(f"{rel} is missing — it is a required docs "
                                "artifact")
            continue
        with open(path, encoding="utf-8") as fh:
            references = sorted(set(_MODULE.findall(fh.read())))
        if not references:
            problems.append(f"{rel} names no `repro.*` modules — the "
                            "module-import drift check has nothing to verify")
            continue
        n_total += len(references)
        for reference in references:
            try:
                _resolve_dotted(reference)
            except Exception as exc:  # import/getattr or anything raised
                problems.append(f"{rel} references {reference!r} "
                                f"which does not resolve: {exc}")
    print(f"mapped docs: {n_total} dotted references resolve cleanly"
          if not problems else
          f"mapped docs: {len(problems)} problem(s) across "
          f"{n_total} dotted references")
    return problems


def check_stale_fallback_claims() -> list:
    """Return every surviving 'falls back to the scalar' claim in the
    markdown set and the ``src``/``scripts`` Python sources."""
    candidates = [path for path in markdown_files()
                  if os.path.basename(path) not in _STALE_EXEMPT]
    for top in ("src", "scripts"):
        root = os.path.join(REPO_ROOT, top)
        for dirpath, _, names in os.walk(root):
            candidates.extend(os.path.join(dirpath, name)
                              for name in sorted(names)
                              if name.endswith(".py"))
    problems = []
    for path in candidates:
        if os.path.samefile(path, os.path.abspath(__file__)):
            continue  # this checker's own docstring/pattern
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if _STALE_FALLBACK.search(line):
                    rel = os.path.relpath(path, REPO_ROOT)
                    problems.append(
                        f"{rel}:{lineno} still claims a scalar fallback — "
                        "monitored/mitigated runs batch through the "
                        "lock-step engine (see docs/mitigation.md)")
    print(f"stale fallback claims: scanned {len(candidates)} files, "
          f"{len(problems)} stale claim(s)")
    return problems


def main() -> int:
    # allow running from a checkout without installing the package
    src = os.path.join(REPO_ROOT, "src")
    if os.path.isdir(src) and src not in sys.path:
        sys.path.insert(0, src)

    n_files = len(list(markdown_files()))
    problems = check_links()
    print(f"markdown links: scanned {n_files} files, "
          f"{len(problems)} broken link(s)")
    problems += check_architecture_modules()
    problems += check_stale_fallback_claims()
    if problems:
        print("\nFAIL: documentation drift detected:")
        for line in problems:
            print(f"  - {line}")
        return 1
    print("\nOK: all intra-repo links resolve, every documented module "
          "imports, and no stale scalar-fallback claims survive")
    return 0


if __name__ == "__main__":
    sys.exit(main())
