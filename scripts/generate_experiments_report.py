"""Regenerate the numbers recorded in EXPERIMENTS.md.

Usage: python scripts/generate_experiments_report.py [scale] [output]

Runs every experiment on both platforms at the given scale (default
``small``) and writes the collected tables to the output file (default
stdout).  ``full`` reproduces the paper's 882 x 10 x 2 campaign and takes
hours; ``small`` keeps the structure at laptop scale.
"""

import sys
import time

from repro.experiments import (
    ExperimentConfig,
    run_adversarial_ablation,
    run_fault_free_generalisation,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
    run_multiclass_ablation,
    run_overhead,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    out = open(sys.argv[2], "w") if len(sys.argv) > 2 else sys.stdout

    def emit(text=""):
        print(text, file=out, flush=True)

    emit(f"# Experiment report (scale={scale})")
    emit()
    emit(run_fig3(None).text())
    for platform in ("glucosym", "t1ds2013"):
        config = ExperimentConfig.preset(scale, platform=platform)
        emit()
        emit(f"## platform {platform}: {len(config.patients)} patients x "
             f"{config.scenarios_per_patient} scenarios")
        for fn in (run_fig7, run_fig8, run_table5, run_table6, run_fig9,
                   run_table7, run_table8, run_adversarial_ablation,
                   run_multiclass_ablation, run_fault_free_generalisation,
                   run_overhead):
            start = time.time()
            result = fn(config)
            emit()
            emit(result.text())
            emit(f"({fn.__name__}: {time.time() - start:.0f}s)")
    if out is not sys.stdout:
        out.close()


if __name__ == "__main__":
    main()
